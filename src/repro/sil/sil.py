"""SIL: the Swift-Intermediate-Language analog.

SIL sits between the AST and LIR exactly as in Figure 3 of the paper:
SILGen lowers the checked AST here, SIL passes (including the baseline
"SIL Outlining" of Table I) transform it, and IRGen lowers it to LIR.

Design notes:

* Register machine with unlimited typed temps (``%N``); *not* SSA — mutable
  locals live in ``alloc_stack`` slots and captured locals in heap boxes,
  mirroring real SIL before LLVM's mem2reg.
* ARC is explicit: SILGen inserts ``retain``/``release``; these later lower
  to the ``swift_retain``/``swift_release`` runtime calls whose machine
  patterns dominate the paper's Listings 1-6.
* ``try_apply`` is a block terminator with normal/error successors, like
  real SIL; the error code lands in a dedicated temp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SILError
from repro.frontend.types import Type


Temp = int  # SIL value id


# --- Instructions ------------------------------------------------------------


@dataclass
class SILInstr:
    """Base class; ``result`` is the defined temp or None."""

    result: Optional[Temp] = None

    def operands(self) -> Tuple[Temp, ...]:
        """Temps read by this instruction (used by passes)."""
        return ()


@dataclass
class ConstInt(SILInstr):
    value: int = 0


@dataclass
class ConstFloat(SILInstr):
    value: float = 0.0


@dataclass
class ConstString(SILInstr):
    value: str = ""


@dataclass
class ConstNil(SILInstr):
    pass


@dataclass
class AllocStack(SILInstr):
    """A function-local mutable slot; result is its address."""

    ty: Optional[Type] = None
    name: str = ""  # debug name


@dataclass
class Load(SILInstr):
    addr: Temp = -1
    ty: Optional[Type] = None

    def operands(self):
        return (self.addr,)


@dataclass
class Store(SILInstr):
    value: Temp = -1
    addr: Temp = -1

    def operands(self):
        return (self.value, self.addr)


@dataclass
class AllocBox(SILInstr):
    """Heap box for a closure-captured variable; result is the box ref."""

    ty: Optional[Type] = None
    elem_is_ref: bool = False
    name: str = ""


@dataclass
class BoxGet(SILInstr):
    box: Temp = -1
    ty: Optional[Type] = None

    def operands(self):
        return (self.box,)


@dataclass
class BoxSet(SILInstr):
    """Store a +1 value into a box; the runtime releases old ref contents."""

    box: Temp = -1
    value: Temp = -1
    is_ref: bool = False

    def operands(self):
        return (self.box, self.value)


@dataclass
class AllocRef(SILInstr):
    """Allocate a class instance (rc=1); fields zero-initialised."""

    class_symbol: str = ""
    type_id: int = 0
    num_fields: int = 0


@dataclass
class FieldLoad(SILInstr):
    obj: Temp = -1
    index: int = 0
    ty: Optional[Type] = None

    def operands(self):
        return (self.obj,)


@dataclass
class FieldStore(SILInstr):
    """Store into a field, consuming a +1 value; releases the old ref value."""

    obj: Temp = -1
    index: int = 0
    value: Temp = -1
    is_ref: bool = False

    def operands(self):
        return (self.obj, self.value)


@dataclass
class ArrayNew(SILInstr):
    """Allocate an array of ``count`` elements, all set to ``initial``."""

    count: Temp = -1
    initial: Temp = -1
    elem_is_ref: bool = False
    elem_is_float: bool = False

    def operands(self):
        return (self.count, self.initial)


@dataclass
class ArrayGet(SILInstr):
    """Bounds-checked element read (borrowed for ref elements)."""

    array: Temp = -1
    index: Temp = -1
    ty: Optional[Type] = None

    def operands(self):
        return (self.array, self.index)


@dataclass
class ArraySet(SILInstr):
    """Bounds-checked element write consuming a +1 value for ref elements."""

    array: Temp = -1
    index: Temp = -1
    value: Temp = -1
    is_ref: bool = False

    def operands(self):
        return (self.array, self.index, self.value)


@dataclass
class ArrayCount(SILInstr):
    array: Temp = -1

    def operands(self):
        return (self.array,)


@dataclass
class ArrayAppend(SILInstr):
    """Append a +1 value (runtime grows the buffer)."""

    array: Temp = -1
    value: Temp = -1
    is_ref: bool = False

    def operands(self):
        return (self.array, self.value)


@dataclass
class ArrayRemoveLast(SILInstr):
    """Pop the last element; the result is owned (+1) for ref elements."""

    array: Temp = -1
    ty: Optional[Type] = None

    def operands(self):
        return (self.array,)


@dataclass
class StringLen(SILInstr):
    value: Temp = -1

    def operands(self):
        return (self.value,)


@dataclass
class StringIndex(SILInstr):
    value: Temp = -1
    index: Temp = -1

    def operands(self):
        return (self.value, self.index)


@dataclass
class Retain(SILInstr):
    value: Temp = -1

    def operands(self):
        return (self.value,)


@dataclass
class Release(SILInstr):
    value: Temp = -1

    def operands(self):
        return (self.value,)


@dataclass
class BinOp(SILInstr):
    op: str = ""            # + - * / % & | ^ << >>
    lhs: Temp = -1
    rhs: Temp = -1
    is_float: bool = False

    def operands(self):
        return (self.lhs, self.rhs)


@dataclass
class CmpOp(SILInstr):
    op: str = ""            # == != < <= > >=
    lhs: Temp = -1
    rhs: Temp = -1
    operand_is_float: bool = False

    def operands(self):
        return (self.lhs, self.rhs)


@dataclass
class NegOp(SILInstr):
    value: Temp = -1
    is_float: bool = False

    def operands(self):
        return (self.value,)


@dataclass
class NotOp(SILInstr):
    value: Temp = -1

    def operands(self):
        return (self.value,)


@dataclass
class Convert(SILInstr):
    kind: str = ""          # int_to_double | double_to_int
    value: Temp = -1

    def operands(self):
        return (self.value,)


@dataclass
class Apply(SILInstr):
    """Direct call to a non-throwing function."""

    callee: str = ""
    args: Tuple[Temp, ...] = ()

    def operands(self):
        return tuple(self.args)


@dataclass
class ApplyBuiltin(SILInstr):
    builtin: str = ""
    args: Tuple[Temp, ...] = ()

    def operands(self):
        return tuple(self.args)


@dataclass
class MakeClosure(SILInstr):
    """Allocate a closure object over ``captures`` (boxes, retained)."""

    fn_symbol: str = ""
    captures: Tuple[Temp, ...] = ()

    def operands(self):
        return tuple(self.captures)


@dataclass
class ApplyClosure(SILInstr):
    """Invoke a non-throwing closure value."""

    closure: Temp = -1
    args: Tuple[Temp, ...] = ()

    def operands(self):
        return (self.closure,) + tuple(self.args)


@dataclass
class GlobalLoad(SILInstr):
    symbol: str = ""
    ty: Optional[Type] = None
    #: Ref-typed const globals are statically allocated objects: the value
    #: *is* the symbol address (no load).
    is_object: bool = False


@dataclass
class GlobalStore(SILInstr):
    symbol: str = ""
    value: Temp = -1

    def operands(self):
        return (self.value,)


# --- Terminators ------------------------------------------------------------


@dataclass
class Terminator(SILInstr):
    pass


@dataclass
class Br(Terminator):
    target: str = ""


@dataclass
class CondBr(Terminator):
    cond: Temp = -1
    true_target: str = ""
    false_target: str = ""

    def operands(self):
        return (self.cond,)


@dataclass
class Return(Terminator):
    value: Optional[Temp] = None

    def operands(self):
        return (self.value,) if self.value is not None else ()


@dataclass
class Throw(Terminator):
    code: Temp = -1

    def operands(self):
        return (self.code,)


@dataclass
class TryApply(Terminator):
    """Call a throwing function; branch to normal/error successor.

    ``result`` holds the return value in the normal block; ``error_result``
    holds the error code in the error block.
    """

    callee: str = ""
    args: Tuple[Temp, ...] = ()
    normal_target: str = ""
    error_target: str = ""
    error_result: Temp = -1
    #: Indirect form: call through a closure value instead of a symbol.
    closure: Optional[Temp] = None

    def operands(self):
        base = tuple(self.args)
        if self.closure is not None:
            base = (self.closure,) + base
        return base


@dataclass
class Unreachable(Terminator):
    reason: str = "unreachable"


# --- Containers --------------------------------------------------------------


@dataclass
class SILBlock:
    label: str
    instrs: List[SILInstr] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[Terminator]:
        if self.instrs and isinstance(self.instrs[-1], Terminator):
            return self.instrs[-1]
        return None

    def successors(self) -> List[str]:
        term = self.terminator
        if isinstance(term, Br):
            return [term.target]
        if isinstance(term, CondBr):
            return [term.true_target, term.false_target]
        if isinstance(term, TryApply):
            return [term.normal_target, term.error_target]
        return []


@dataclass
class SILFunction:
    """One SIL function.

    ``param_temps`` are the temps holding the incoming arguments (in order);
    closure bodies receive the context object as an extra final parameter.
    ``is_bare`` marks compiler-generated helpers (thunks, SIL-outlined
    functions) that skip the +1 parameter-release convention.
    """

    symbol: str
    param_temps: List[Temp] = field(default_factory=list)
    param_types: List[Type] = field(default_factory=list)
    ret_type: Optional[Type] = None
    throws: bool = False
    blocks: List[SILBlock] = field(default_factory=list)
    is_bare: bool = False
    source_module: str = ""
    next_temp: Temp = 0

    def new_temp(self) -> Temp:
        temp = self.next_temp
        self.next_temp += 1
        return temp

    def block(self, label: str) -> SILBlock:
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise SILError(f"no block {label!r} in {self.symbol}")

    def new_block(self, label: str) -> SILBlock:
        if any(b.label == label for b in self.blocks):
            raise SILError(f"duplicate block {label!r} in {self.symbol}")
        blk = SILBlock(label)
        self.blocks.append(blk)
        return blk

    @property
    def num_instrs(self) -> int:
        return sum(len(b.instrs) for b in self.blocks)

    def render(self) -> str:
        lines = [f"sil @{self.symbol} ({len(self.param_temps)} params)"
                 f"{' throws' if self.throws else ''}:"]
        for blk in self.blocks:
            lines.append(f"{blk.label}:")
            for instr in blk.instrs:
                res = f"%{instr.result} = " if instr.result is not None else ""
                args = {
                    k: v for k, v in vars(instr).items() if k != "result"
                }
                lines.append(f"    {res}{type(instr).__name__} {args}")
        return "\n".join(lines)


@dataclass
class SILGlobal:
    """A module-level constant global lowered from a GlobalDecl."""

    symbol: str
    ty: Type
    const_value: object  # int | float | str | list
    is_let: bool = True
    origin_module: str = ""


@dataclass
class SILModule:
    name: str
    functions: List[SILFunction] = field(default_factory=list)
    globals: List[SILGlobal] = field(default_factory=list)
    #: Program entry symbol if this module defines ``main``.
    entry_symbol: Optional[str] = None

    def function(self, symbol: str) -> SILFunction:
        for fn in self.functions:
            if fn.symbol == symbol:
                return fn
        raise SILError(f"no function {symbol!r} in SIL module {self.name}")

    @property
    def num_instrs(self) -> int:
        return sum(fn.num_instrs for fn in self.functions)
