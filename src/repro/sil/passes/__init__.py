"""SIL optimization passes."""
