"""SIL outlining (the Table I baseline, §III).

Swift's SILOptimizer "Outlining" pass creates function calls in lieu of
inlined instruction sequences for certain well-defined patterns — copies,
assignments, and reference counting.  We model its most common win: the
``retain + apply`` pair our +1 argument convention stamps at every
reference-passing call site.  Sites calling the same callee with the same
arity are redirected through one shared bare helper that performs the
retain and forwards the call (and its result).

As in the paper, the effect on final code size is small (a fraction of a
percent) because the machine outliner would have caught these repeats —
and much more — anyway.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.frontend.types import DOUBLE
from repro.sil import sil

#: Minimum occurrences before a helper pays for itself.
MIN_OCCURRENCES = 4


def build_signatures(modules) -> Dict[str, sil.SILFunction]:
    """Whole-program symbol -> SILFunction table (for typing helpers)."""
    table: Dict[str, sil.SILFunction] = {}
    for module in modules:
        for fn in module.functions:
            table[fn.symbol] = fn
    return table


def run_on_module(module: sil.SILModule,
                  signatures: Optional[Dict[str, sil.SILFunction]] = None
                  ) -> Dict[str, int]:
    """Returns metrics: sites outlined, helpers created."""
    signatures = signatures if signatures is not None else build_signatures(
        [module])
    # Pass 1: census of (callee, nargs, has_result) retain+apply shapes.
    census: Dict[Tuple[str, int, bool], int] = {}
    for fn in module.functions:
        if fn.is_bare:
            continue
        for blk in fn.blocks:
            for i in range(len(blk.instrs) - 1):
                shape = _match(blk.instrs, i, signatures)
                if shape is not None:
                    census[shape] = census.get(shape, 0) + 1

    helpers: Dict[Tuple[str, int, bool], str] = {}
    sites = 0
    for shape, count in sorted(census.items()):
        if count < MIN_OCCURRENCES:
            continue
        helpers[shape] = _make_helper(module, shape, signatures)

    # Pass 2: rewrite sites.
    helper_symbols = set(helpers.values())
    for fn in module.functions:
        if fn.is_bare or fn.symbol in helper_symbols:
            continue
        for blk in fn.blocks:
            i = 0
            while i < len(blk.instrs) - 1:
                shape = _match(blk.instrs, i, signatures)
                helper = helpers.get(shape) if shape is not None else None
                if helper is not None:
                    apply_instr: sil.Apply = blk.instrs[i + 1]  # type: ignore
                    blk.instrs[i:i + 2] = [
                        sil.Apply(result=apply_instr.result, callee=helper,
                                  args=apply_instr.args)
                    ]
                    sites += 1
                i += 1
    return {"helpers_created": len(helpers), "sites_outlined": sites}


def _match(instrs: List[sil.SILInstr], i: int,
           signatures: Dict[str, sil.SILFunction]):
    """Match ``retain v; apply @f(v, ...)`` with known, all-integer-class
    argument registers (float args would change the helper's convention)."""
    first = instrs[i]
    second = instrs[i + 1]
    if not isinstance(first, sil.Retain) or not isinstance(second, sil.Apply):
        return None
    if not second.callee or second.callee not in signatures:
        return None
    if not second.args or second.args[0] != first.value:
        return None
    callee = signatures[second.callee]
    if any(t == DOUBLE for t in callee.param_types):
        return None
    if callee.ret_type == DOUBLE:
        return None
    return (second.callee, len(second.args), second.result is not None)


def _make_helper(module: sil.SILModule, shape,
                 signatures: Dict[str, sil.SILFunction]) -> str:
    callee_symbol, nargs, has_result = shape
    callee = signatures[callee_symbol]
    symbol = f"{module.name}::sil_outlined${len(module.functions)}"
    helper = sil.SILFunction(symbol=symbol, is_bare=True,
                             ret_type=callee.ret_type if has_result else None,
                             source_module=module.name)
    params = [helper.new_temp() for _ in range(nargs)]
    helper.param_temps = params
    # Parameter types matter for IRGen's register-class assignment.
    helper.param_types = list(callee.param_types[:nargs])
    while len(helper.param_types) < nargs:
        helper.param_types.append(None)  # type: ignore[arg-type]
    entry = helper.new_block("entry")
    entry.instrs.append(sil.Retain(value=params[0]))
    result = helper.new_temp() if has_result else None
    entry.instrs.append(sil.Apply(result=result, callee=callee_symbol,
                                  args=tuple(params)))
    entry.instrs.append(sil.Return(value=result))
    module.functions.append(helper)
    signatures[symbol] = helper
    return symbol
