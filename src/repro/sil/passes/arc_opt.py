"""ARC optimizer: remove provably redundant retain/release pairs.

A conservative peephole modelled on Swift's ARC optimizer: a ``retain %v``
followed later in the same block by ``release %v`` with only *rc-neutral*
instructions in between (no calls, stores to ref slots, or other ARC
traffic) cancels out — the object is demonstrably kept alive by whoever
provided %v for the whole window.
"""

from __future__ import annotations

from typing import List

from repro.sil import sil

#: Instructions that cannot observe or change any refcount.
_RC_NEUTRAL = (
    sil.ConstInt, sil.ConstFloat, sil.ConstNil, sil.Load, sil.BinOp,
    sil.CmpOp, sil.NegOp, sil.NotOp, sil.Convert, sil.AllocStack,
    sil.ArrayCount, sil.StringLen, sil.GlobalLoad, sil.FieldLoad,
    sil.BoxGet, sil.StringIndex, sil.ArrayGet,
)


def run_on_function(fn: sil.SILFunction) -> int:
    removed = 0
    for blk in fn.blocks:
        changed = True
        while changed:
            changed = False
            for i, instr in enumerate(blk.instrs):
                if not isinstance(instr, sil.Retain):
                    continue
                j = _matching_release(blk.instrs, i)
                if j is None:
                    continue
                del blk.instrs[j]
                del blk.instrs[i]
                removed += 2
                changed = True
                break
    return removed


def _matching_release(instrs: List[sil.SILInstr], start: int):
    value = instrs[start].value  # type: ignore[attr-defined]
    for j in range(start + 1, len(instrs)):
        instr = instrs[j]
        if isinstance(instr, sil.Release) and instr.value == value:
            return j
        if not isinstance(instr, _RC_NEUTRAL):
            return None
    return None


def run_on_module(module: sil.SILModule) -> int:
    return sum(run_on_function(fn) for fn in module.functions)
