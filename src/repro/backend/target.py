"""Target ABI description for the AArch64-like backend.

Mirrors AAPCS64 + the Swift error convention:

* integer/pointer args in ``x0..x7``, float args in ``d0..d7``;
* return in ``x0`` / ``d0``;
* throwing callees report through ``x21`` (0 = success, code+1 on throw);
* ``x19..x20, x22..x28`` and ``d8..d15`` are callee-saved;
* ``x15/x16/x17`` and ``d16/d17`` are reserved compiler scratch.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import BackendError
from repro.isa.registers import (
    ARG_FPRS,
    ARG_GPRS,
    CALLEE_SAVED_FPRS,
    CALLEE_SAVED_GPRS,
    CALLER_SAVED_FPRS,
    CALLER_SAVED_GPRS,
    ERROR_REG,
    RET_FPR,
    RET_GPR,
)

MAX_REG_ARGS = 8


def assign_arg_registers(arg_is_float: Tuple[bool, ...]) -> List[str]:
    """Argument registers for a call, AAPCS64-style (separate int/fp pools)."""
    gprs = iter(ARG_GPRS)
    fprs = iter(ARG_FPRS)
    out: List[str] = []
    for is_float in arg_is_float:
        try:
            out.append(next(fprs) if is_float else next(gprs))
        except StopIteration:
            raise BackendError(
                f"more than {MAX_REG_ARGS} arguments of one class are not "
                "supported (no stack-argument lowering)") from None
    return out


def return_register(is_float: bool) -> str:
    return RET_FPR if is_float else RET_GPR


def call_clobbers() -> Tuple[str, ...]:
    """Registers a call may clobber (caller-saved + the error register)."""
    return CALLER_SAVED_GPRS + CALLER_SAVED_FPRS + (ERROR_REG,)


def is_callee_saved_reg(reg: str) -> bool:
    return reg in CALLEE_SAVED_GPRS or reg in CALLEE_SAVED_FPRS
