"""Calling-convention helpers for the backend.

The ABI facts themselves now live on
:class:`repro.target.spec.CallingConvention`; these helpers resolve a
:class:`~repro.target.spec.TargetSpec` (defaulting to the session target)
and apply it.  Mirrors AAPCS64 + the Swift error convention on both
shipped targets:

* integer/pointer args in ``x0..x7``, float args in ``d0..d7``;
* return in ``x0`` / ``d0``;
* throwing callees report through ``x21`` (0 = success, code+1 on throw);
* ``x19..x20, x22..x28`` and ``d8..d15`` are callee-saved;
* ``x15/x16/x17`` and ``d16/d17`` are reserved compiler scratch.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import BackendError
from repro.target import get_target
from repro.target.spec import TargetSpec

#: Deprecated: use ``TargetSpec.cc.max_reg_args``.
MAX_REG_ARGS = 8


def assign_arg_registers(arg_is_float: Tuple[bool, ...],
                         spec: Optional[TargetSpec] = None) -> List[str]:
    """Argument registers for a call, AAPCS64-style (separate int/fp pools)."""
    cc = get_target(spec).cc
    gprs = iter(cc.arg_gprs)
    fprs = iter(cc.arg_fprs)
    out: List[str] = []
    for is_float in arg_is_float:
        try:
            out.append(next(fprs) if is_float else next(gprs))
        except StopIteration:
            raise BackendError(
                f"more than {cc.max_reg_args} arguments of one class are not "
                "supported (no stack-argument lowering)") from None
    return out


def return_register(is_float: bool,
                    spec: Optional[TargetSpec] = None) -> str:
    cc = get_target(spec).cc
    return cc.ret_fpr if is_float else cc.ret_gpr


def call_clobbers(spec: Optional[TargetSpec] = None) -> Tuple[str, ...]:
    """Registers a call may clobber (caller-saved + the error register)."""
    return get_target(spec).cc.call_clobbers()


def is_callee_saved_reg(reg: str, spec: Optional[TargetSpec] = None) -> bool:
    return get_target(spec).cc.is_callee_saved(reg)
