"""llc driver: LIR module -> machine module.

Pipeline per function: phi elimination (out-of-SSA) -> instruction
selection -> linear-scan register allocation -> frame lowering.  Optionally
runs N rounds of whole-module machine outlining afterwards — the paper's
``-outline-repeat-count=N`` flag on llc.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.backend.frame import lower_frame
from repro.backend.isel import select_function
from repro.backend.regalloc import allocate_function
from repro.isa.instructions import MachineFunction, MachineGlobal, MachineModule
from repro.lir import ir
from repro.lir.passes import phielim
from repro.obs import trace
from repro.target import get_target
from repro.target.spec import TargetSpec


@dataclass
class LLCOptions:
    #: Rounds of machine outlining (0 disables; the paper ships 5).
    outline_rounds: int = 0
    #: Collect per-round outlining statistics (Table II).
    collect_stats: bool = True
    #: Namespace for outlined symbols (per-module builds must use the module
    #: name so the system linker does not see clashing clones).
    outlined_name_prefix: str = ""
    #: Target name or spec (None = session default target).
    target: Optional[object] = None


@dataclass
class LLCResult:
    module: MachineModule
    #: One OutlineRoundStats per executed round (empty when disabled).
    outline_stats: List["object"] = field(default_factory=list)


def compile_function(fn: ir.LIRFunction,
                     spec: Optional[TargetSpec] = None) -> MachineFunction:
    """Lower one LIR function to machine code (no outlining)."""
    spec = get_target(spec)
    phielim.run_on_function(fn)
    mf = select_function(fn, spec)
    alloc = allocate_function(mf, spec)
    lower_frame(mf, alloc, spec)
    return mf


def lower_globals(module: ir.LIRModule) -> List[MachineGlobal]:
    out: List[MachineGlobal] = []
    for gbl in module.globals:
        out.append(_lower_global(gbl))
    return out


def _lower_global(gbl: ir.LIRGlobal) -> MachineGlobal:
    # The binary-image builder materialises object headers; here we keep the
    # logical initialiser and let link assign layout.
    init = gbl.init
    if isinstance(init, str):
        values: object = init
    elif isinstance(init, list):
        values = list(init)
    else:
        values = [init]
    return MachineGlobal(name=gbl.symbol, values=values,  # type: ignore[arg-type]
                         origin_module=gbl.origin_module,
                         is_const=gbl.is_const, is_object=gbl.is_object,
                         elem_is_float=gbl.elem_is_float)


def run_llc(module: ir.LIRModule,
            options: Optional[LLCOptions] = None) -> LLCResult:
    """Compile a full LIR module, with optional repeated machine outlining."""
    options = options or LLCOptions()
    spec = get_target(options.target)  # type: ignore[arg-type]
    with trace.span("llc-module", kind="llc", module=module.name,
                    num_functions=len(module.functions),
                    target=spec.name):
        machine = MachineModule(name=module.name)
        for fn in module.functions:
            machine.functions.append(compile_function(fn, spec))
        machine.globals = lower_globals(module)
        stats: List[object] = []
        if options.outline_rounds > 0:
            from repro.outliner.repeated import repeated_outline

            stats = repeated_outline(machine, rounds=options.outline_rounds,
                                     collect_stats=options.collect_stats,
                                     name_prefix=options.outlined_name_prefix,
                                     target=spec)
        trace.metrics().inc("llc.modules")
        trace.metrics().inc("llc.functions", len(machine.functions))
    return LLCResult(module=machine, outline_stats=stats)
