"""Linear-scan register allocation.

Standard Poletto/Sarkar linear scan over the conservative intervals from
:mod:`repro.backend.liveness`, with:

* fixed-position blocking for physical registers named by the instruction
  stream (argument moves, return moves, error-register traffic);
* call-crossing intervals restricted to callee-saved registers — which is
  exactly what makes frame lowering emit the STP/LDP pair sequences of the
  paper's Listings 7-8;
* spilling to numbered slots, rewritten through the reserved scratch
  registers (x15/x16/x17, d16/d17).

The allocator's register *assignment choices* are one of the paper's named
sources of repeated-but-slightly-different machine sequences (Listings 1-2
differ only in source register), so determinism matters: pools are iterated
in a fixed order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import RegAllocError
from repro.backend.liveness import Interval, compute_intervals
from repro.isa.instructions import MachineFunction, MachineInstr, Opcode
from repro.isa.registers import is_virtual
from repro.target import get_target
from repro.target.spec import CallingConvention, TargetSpec


def _pools(cc: CallingConvention) -> Tuple[Tuple[str, ...], ...]:
    """(gpr, fpr, gpr_callee_saved, fpr_callee_saved) allocation pools.

    Pool orderings: caller-saved first for cheap short intervals, then
    callee-saved.  Call-crossing intervals use the callee-saved-only pool.
    """
    cs_gprs = set(cc.callee_saved_gprs)
    cs_fprs = set(cc.callee_saved_fprs)
    gpr = tuple(r for r in cc.allocatable_gprs if r not in cs_gprs) \
        + tuple(r for r in cc.allocatable_gprs if r in cs_gprs)
    fpr = tuple(r for r in cc.allocatable_fprs if r not in cs_fprs) \
        + tuple(r for r in cc.allocatable_fprs if r in cs_fprs)
    gpr_cs = tuple(r for r in cc.allocatable_gprs if r in cs_gprs)
    fpr_cs = tuple(r for r in cc.allocatable_fprs if r in cs_fprs)
    return gpr, fpr, gpr_cs, fpr_cs


@dataclass
class AllocationResult:
    assignment: Dict[str, str]
    spill_slots: Dict[str, int]
    num_spill_slots: int
    used_callee_saved: List[str]


def allocate_function(mf: MachineFunction,
                      spec: Optional[TargetSpec] = None) -> AllocationResult:
    """Allocate registers in *mf*, rewriting it in place."""
    spec = get_target(spec)
    cc = spec.cc
    gpr_pool, fpr_pool, gpr_cs_pool, fpr_cs_pool = _pools(cc)
    liveness = compute_intervals(mf)
    intervals = liveness.intervals
    phys_positions = {
        reg: sorted(set(positions))
        for reg, positions in liveness.phys_positions.items()
    }

    assignment: Dict[str, str] = {}
    spill_slots: Dict[str, int] = {}
    active: List[Interval] = []
    next_slot = 0

    def phys_blocked(reg: str, interval: Interval) -> bool:
        for pos in phys_positions.get(reg, ()):
            # A def position p+1 belonging to the interval's own first
            # instruction is fine; conservative containment check instead.
            if interval.start < pos < interval.end:
                return True
        return False

    for interval in intervals:
        # Expire finished intervals.
        active = [iv for iv in active if iv.end >= interval.start]
        in_use = {iv.assigned for iv in active if iv.assigned}
        if interval.crosses_call:
            pool = fpr_cs_pool if interval.is_float else gpr_cs_pool
        else:
            pool = fpr_pool if interval.is_float else gpr_pool
        chosen: Optional[str] = None
        for reg in pool:
            if reg in in_use:
                continue
            if phys_blocked(reg, interval):
                continue
            chosen = reg
            break
        if chosen is None:
            interval.spill_slot = next_slot
            spill_slots[interval.reg] = next_slot
            next_slot += 1
            continue
        interval.assigned = chosen
        assignment[interval.reg] = chosen
        active.append(interval)

    _rewrite(mf, assignment, spill_slots, cc)
    used_cs = sorted(
        {reg for reg in assignment.values() if cc.is_callee_saved(reg)},
        key=_reg_sort_key,
    )
    mf.num_spill_slots = next_slot
    return AllocationResult(assignment=assignment, spill_slots=spill_slots,
                            num_spill_slots=next_slot,
                            used_callee_saved=used_cs)


def _reg_sort_key(reg: str) -> Tuple[int, int]:
    return (0 if reg.startswith("x") else 1, int(reg[1:]))


def _rewrite(mf: MachineFunction, assignment: Dict[str, str],
             spill_slots: Dict[str, int], cc: CallingConvention) -> None:
    """Substitute assignments and expand spill loads/stores via scratch."""
    for blk in mf.blocks:
        new_instrs: List[MachineInstr] = []
        for instr in blk.instrs:
            uses = [r for r in instr.uses() if is_virtual(r)]
            defs = [r for r in instr.defs() if is_virtual(r)]
            spilled_uses = [r for r in dict.fromkeys(uses)
                            if r in spill_slots]
            spilled_defs = [r for r in dict.fromkeys(defs)
                            if r in spill_slots]
            mapping: Dict[str, str] = {}
            for reg in dict.fromkeys(uses + defs):
                if reg in assignment:
                    mapping[reg] = assignment[reg]
            # Assign scratch registers to spilled vregs.
            gpr_scratch = iter(cc.scratch_gprs)
            fpr_scratch = iter(cc.scratch_fprs)
            for reg in spilled_uses + [r for r in spilled_defs
                                       if r not in spilled_uses]:
                try:
                    scratch = (next(fpr_scratch) if reg.startswith("fv")
                               else next(gpr_scratch))
                except StopIteration:
                    raise RegAllocError(
                        f"{mf.name}: out of scratch registers for "
                        f"{instr.render()}") from None
                mapping[reg] = scratch
            # Reloads before the instruction.
            for reg in spilled_uses:
                slot = spill_slots[reg]
                opc = Opcode.LDRDui if reg.startswith("fv") else Opcode.LDRXui
                new_instrs.append(
                    MachineInstr(opc, (mapping[reg], "sp", slot * 8)))
            new_instrs.append(_substitute(instr, mapping))
            # Spills after the instruction.
            for reg in spilled_defs:
                slot = spill_slots[reg]
                opc = Opcode.STRDui if reg.startswith("fv") else Opcode.STRXui
                new_instrs.append(
                    MachineInstr(opc, (mapping[reg], "sp", slot * 8)))
        blk.instrs = new_instrs
    _drop_identity_moves(mf)


def _substitute(instr: MachineInstr, mapping: Dict[str, str]) -> MachineInstr:
    if not mapping:
        return instr
    operands = tuple(
        mapping.get(op, op) if isinstance(op, str) else op
        for op in instr.operands
    )
    return MachineInstr(instr.opcode, operands, instr.implicit_uses,
                        instr.implicit_defs)


def _drop_identity_moves(mf: MachineFunction) -> None:
    for blk in mf.blocks:
        blk.instrs = [
            mi for mi in blk.instrs
            if not (
                mi.opcode is Opcode.ORRXrs
                and mi.operands[1] == "xzr"
                and mi.operands[0] == mi.operands[2]
            ) and not (
                mi.opcode is Opcode.FMOVDr
                and mi.operands[0] == mi.operands[1]
            )
        ]
