"""Frame lowering: prologue/epilogue insertion.

Produces the classic AArch64 frame shapes of the paper's Listings 7-8:
callee-saved registers pushed in pairs with ``STP`` (first pair pre-indexed,
allocating the area) and popped with ``LDP``.  Epilogues are emitted at
every ``RET`` site, which is why frame teardown sequences repeat so often in
real binaries.

Frame layout (high to low addresses)::

    [ x29/x30 pair ]        <- pushed first (STPXpre), x29 = new fp
    [ callee-saved pairs ]
    [ spill slots ]          <- sp points here in the body

Leaf functions with no calls, spills, or callee-saved usage get no frame.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.backend.regalloc import AllocationResult
from repro.isa.instructions import MachineFunction, MachineInstr, Opcode
from repro.target import get_target
from repro.target.spec import TargetSpec


def lower_frame(mf: MachineFunction, alloc: AllocationResult,
                spec: Optional[TargetSpec] = None) -> None:
    """Insert prologue/epilogue and finalise spill-slot offsets in place."""
    regs = get_target(spec).regs
    FP, LR, SP = regs.fp, regs.lr, regs.sp
    has_calls = any(instr.is_call for instr in mf.instructions())
    csrs = list(alloc.used_callee_saved)
    spill_bytes = 8 * alloc.num_spill_slots
    # Keep sp 16-byte aligned.
    if spill_bytes % 16:
        spill_bytes += 8
    needs_frame = has_calls or csrs or spill_bytes
    if not needs_frame:
        mf.frame_bytes = 0
        return

    # Pair up callee-saved registers (same-class pairs; odd tail pairs with
    # itself padding -- modelled by pairing with the next register slot).
    pairs = _make_pairs(csrs)
    csr_bytes = 16 * len(pairs)
    mf.frame_bytes = 16 + csr_bytes + spill_bytes

    prologue: List[MachineInstr] = [
        MachineInstr(Opcode.STPXpre, (FP, LR, SP, -16)),
    ]
    for a, b in pairs:
        prologue.append(MachineInstr(Opcode.STPXpre, (a, b, SP, -16)))
    if spill_bytes:
        prologue.append(MachineInstr(Opcode.SUBXri, (SP, SP, spill_bytes)))

    epilogue: List[MachineInstr] = []
    if spill_bytes:
        epilogue.append(MachineInstr(Opcode.ADDXri, (SP, SP, spill_bytes)))
    for a, b in reversed(pairs):
        epilogue.append(MachineInstr(Opcode.LDPXpost, (a, b, SP, 16)))
    epilogue.append(MachineInstr(Opcode.LDPXpost, (FP, LR, SP, 16)))

    entry = mf.blocks[0]
    entry.instrs = prologue + entry.instrs

    for blk in mf.blocks:
        new_instrs: List[MachineInstr] = []
        for instr in blk.instrs:
            if instr.opcode is Opcode.RET:
                new_instrs.extend(
                    MachineInstr(e.opcode, e.operands) for e in epilogue
                )
            new_instrs.append(instr)
        blk.instrs = new_instrs


def _make_pairs(csrs: List[str]) -> List[Tuple[str, str]]:
    """Group callee-saved registers into same-class STP/LDP pairs."""
    gprs = [r for r in csrs if r.startswith("x")]
    fprs = [r for r in csrs if r.startswith("d")]
    pairs: List[Tuple[str, str]] = []
    for group in (gprs, fprs):
        for i in range(0, len(group) - 1, 2):
            pairs.append((group[i], group[i + 1]))
        if len(group) % 2:
            # Odd tail: pair the register with itself's slot by storing it
            # twice (semantically a harmless 16-byte save of one register).
            pairs.append((group[-1], group[-1]))
    return pairs
