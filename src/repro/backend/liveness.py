"""Machine-IR liveness analysis.

Computes per-block live-in/live-out sets over virtual (and physical)
registers, plus linearised live intervals for the linear-scan allocator and
the outliner's legality checks.  Positions are instruction indices in block
layout order, two slots per instruction (use at 2i, def at 2i+1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.isa.instructions import MachineFunction, MachineInstr
from repro.isa.registers import is_virtual


@dataclass
class BlockLiveness:
    live_in: Set[str] = field(default_factory=set)
    live_out: Set[str] = field(default_factory=set)


def block_liveness(mf: MachineFunction,
                   track_physical: bool = False) -> Dict[str, BlockLiveness]:
    """Iterative backwards dataflow over register names."""
    info = {blk.label: BlockLiveness() for blk in mf.blocks}
    succs: Dict[str, List[str]] = {}
    for i, blk in enumerate(mf.blocks):
        out = list(blk.successors())
        if blk.falls_through() and i + 1 < len(mf.blocks):
            out.append(mf.blocks[i + 1].label)
        succs[blk.label] = out

    gen: Dict[str, Set[str]] = {}
    kill: Dict[str, Set[str]] = {}
    for blk in mf.blocks:
        g: Set[str] = set()
        k: Set[str] = set()
        for instr in blk.instrs:
            for reg in instr.uses():
                if _tracked(reg, track_physical) and reg not in k:
                    g.add(reg)
            for reg in instr.defs():
                if _tracked(reg, track_physical):
                    k.add(reg)
        gen[blk.label] = g
        kill[blk.label] = k

    changed = True
    while changed:
        changed = False
        for blk in reversed(mf.blocks):
            label = blk.label
            out: Set[str] = set()
            for succ in succs[label]:
                out |= info[succ].live_in
            new_in = gen[label] | (out - kill[label])
            if out != info[label].live_out or new_in != info[label].live_in:
                info[label].live_out = out
                info[label].live_in = new_in
                changed = True
    return info


def _tracked(reg: str, track_physical: bool) -> bool:
    if is_virtual(reg):
        return True
    return track_physical


@dataclass
class Interval:
    """Conservative single-segment live interval for one virtual register."""

    reg: str
    start: int
    end: int
    is_float: bool
    crosses_call: bool = False
    spill_slot: Optional[int] = None
    assigned: Optional[str] = None

    def overlaps_point(self, pos: int) -> bool:
        return self.start <= pos <= self.end


@dataclass
class LivenessResult:
    intervals: List[Interval]
    #: positions of call instructions (BL/BLR) in linearised order.
    call_positions: List[int]
    #: physical register -> positions where it is explicitly used/defined.
    phys_positions: Dict[str, List[int]]
    #: linear position of each (block index, instr index).
    position_of: Dict[Tuple[int, int], int]
    num_positions: int


def compute_intervals(mf: MachineFunction) -> LivenessResult:
    block_info = block_liveness(mf)
    position_of: Dict[Tuple[int, int], int] = {}
    pos = 0
    block_bounds: Dict[str, Tuple[int, int]] = {}
    for bi, blk in enumerate(mf.blocks):
        start = pos
        for ii, _ in enumerate(blk.instrs):
            position_of[(bi, ii)] = pos
            pos += 2
        block_bounds[blk.label] = (start, max(start, pos - 1))

    starts: Dict[str, int] = {}
    ends: Dict[str, int] = {}
    floats: Dict[str, bool] = {}
    call_positions: List[int] = []
    phys_positions: Dict[str, List[int]] = {}

    def note(reg: str, p: int) -> None:
        if is_virtual(reg):
            if reg not in starts or p < starts[reg]:
                starts[reg] = p
            if reg not in ends or p > ends[reg]:
                ends[reg] = p
            floats[reg] = reg.startswith("fv")
        elif reg not in ("sp", "xzr", "nzcv"):
            phys_positions.setdefault(reg, []).append(p)

    for bi, blk in enumerate(mf.blocks):
        for ii, instr in enumerate(blk.instrs):
            p = position_of[(bi, ii)]
            if instr.is_call:
                call_positions.append(p)
            for reg in instr.uses():
                note(reg, p)
            for reg in instr.defs():
                note(reg, p + 1)

    # Extend intervals across blocks where the vreg is live-in/out.
    for blk in mf.blocks:
        lo, hi = block_bounds[blk.label]
        for reg in block_info[blk.label].live_in:
            if is_virtual(reg):
                note(reg, lo)
        for reg in block_info[blk.label].live_out:
            if is_virtual(reg):
                note(reg, hi)

    intervals: List[Interval] = []
    call_set = sorted(call_positions)
    for reg, start in starts.items():
        end = ends[reg]
        crosses = any(start < cp < end for cp in call_set)
        intervals.append(Interval(reg=reg, start=start, end=end,
                                  is_float=floats[reg], crosses_call=crosses))
    intervals.sort(key=lambda iv: (iv.start, iv.end))
    return LivenessResult(intervals=intervals, call_positions=call_set,
                          phys_positions=phys_positions,
                          position_of=position_of, num_positions=pos)
