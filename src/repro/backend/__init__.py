"""Backend (llc analog): isel, register allocation, frame lowering."""

from repro.backend.llc import LLCOptions, LLCResult, compile_function, run_llc

__all__ = ["LLCOptions", "LLCResult", "compile_function", "run_llc"]
