"""Instruction selection: LIR (post phi-elimination) -> machine IR.

Emits virtual-register machine code in the shapes that make the paper's
patterns appear after register allocation:

* calls set up arguments with ``ORRXrs`` moves into ``x0..x7`` (the
  calling-convention shuffles of Listings 1-2) and ``BL``;
* global addresses take the classic ``ADRP`` + ``ADDlo`` pair;
* compare-and-branch fuses into ``SUBS`` + ``B.cc`` when adjacent;
* inline array bounds checks lower to header load + ``SUBS`` + ``B.hs``.

Simple single-use folding merges ``PtrAdd`` into ``ui``-form load/store
offsets and ``(base + (idx << 3))`` addressing into ``roX`` forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import BackendError
from repro.isa.instructions import (
    Cond,
    Label,
    MachineBlock,
    MachineFunction,
    MachineInstr,
    Opcode,
    Sym,
    materialize_constant,
    mov_rr,
)
from repro.backend import target
from repro.lir import ir
from repro.target import get_target
from repro.target.spec import TargetSpec

_CMP_COND = {
    "==": Cond.EQ,
    "!=": Cond.NE,
    "<": Cond.LT,
    "<=": Cond.LE,
    ">": Cond.GT,
    ">=": Cond.GE,
    "u>=": Cond.HS,
    "u<": Cond.LO,
}

_TRAP_CODES = {"bounds": 1, "assert": 2, "div": 3, "trap": 4, "unreachable": 0}


def compute_value_classes(fn: ir.LIRFunction) -> Dict[int, bool]:
    """Map each LIR value to True if it lives in a float register."""
    is_float: Dict[int, bool] = {}
    for value, flt in zip(fn.params, fn.param_is_float):
        is_float[value] = flt
    for blk in fn.blocks:
        for instr in blk.instrs:
            if instr.result is None:
                continue
            flt = False
            if isinstance(instr, (ir.Load, ir.BinOp, ir.Phi, ir.Copy, ir.Neg)):
                flt = instr.is_float
            elif isinstance(instr, ir.Convert):
                flt = instr.kind == "int_to_double"
            elif isinstance(instr, ir.Call):
                flt = instr.ret_is_float
            is_float[instr.result] = flt
    return is_float


class FunctionISel:
    """Selects machine instructions for one LIR function."""

    def __init__(self, fn: ir.LIRFunction,
                 spec: Optional[TargetSpec] = None):
        self.fn = fn
        self.spec = get_target(spec)
        self.zero = self.spec.regs.zero
        self.call_scratch = self.spec.cc.scratch_gprs[0]
        self.error_reg = self.spec.cc.error_reg
        self.mf = MachineFunction(name=fn.symbol,
                                  source_module=fn.source_module)
        self.value_float = compute_value_classes(fn)
        self.use_count = self._count_uses()
        self.defs: Dict[int, Tuple[ir.LIRInstr, str]] = self._collect_defs()
        self.cur: Optional[MachineBlock] = None
        self._const_counter = 0
        self._skipped: Set[int] = set()
        self._trap_div_label: Optional[str] = None

    # -- bookkeeping --------------------------------------------------------

    def _count_uses(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for blk in self.fn.blocks:
            for instr in blk.instrs:
                for op in instr.operands():
                    if ir.is_value(op):
                        counts[op] = counts.get(op, 0) + 1
        return counts

    def _collect_defs(self) -> Dict[int, Tuple[ir.LIRInstr, str]]:
        defs: Dict[int, Tuple[ir.LIRInstr, str]] = {}
        multi: Set[int] = set()
        for blk in self.fn.blocks:
            for instr in blk.instrs:
                if instr.result is not None:
                    if instr.result in defs:
                        multi.add(instr.result)
                    defs[instr.result] = (instr, blk.label)
        for value in multi:
            defs.pop(value, None)  # multi-def values are never folded
        return defs

    def _vreg(self, value: int) -> str:
        return f"fv{value}" if self.value_float.get(value, False) else f"v{value}"

    def _fresh_vreg(self, is_float: bool) -> str:
        self._const_counter += 1
        return f"fvc{self._const_counter}" if is_float else f"vc{self._const_counter}"

    def emit(self, instr: MachineInstr) -> None:
        assert self.cur is not None
        self.cur.append(instr)

    def _materialize(self, const: ir.Const, into: Optional[str] = None) -> str:
        if const.is_float:
            dst = into or self._fresh_vreg(True)
            self.emit(MachineInstr(Opcode.FMOVDi, (dst, float(const.value))))
            return dst
        dst = into or self._fresh_vreg(False)
        for mi in materialize_constant(dst, int(const.value)):
            self.emit(mi)
        return dst

    def _reg_of(self, op: ir.Operand, into: Optional[str] = None) -> str:
        if isinstance(op, ir.Const):
            return self._materialize(op, into)
        if ir.is_value(op):
            reg = self._vreg(op)
            if into is not None and into != reg:
                self._emit_move(into, reg,
                                self.value_float.get(op, False))
                return into
            return reg
        raise BackendError(f"cannot put operand {op!r} in a register")

    def _emit_move(self, dst: str, src: str, is_float: bool) -> None:
        if is_float:
            self.emit(MachineInstr(Opcode.FMOVDr, (dst, src)))
        else:
            self.emit(mov_rr(dst, src))

    def _op_is_float(self, op: ir.Operand) -> bool:
        if isinstance(op, ir.Const):
            return op.is_float
        if ir.is_value(op):
            return self.value_float.get(op, False)
        return False

    def _imm(self, op: ir.Operand, lo: int = 0, hi: int = 4095) -> Optional[int]:
        if isinstance(op, ir.Const) and not op.is_float:
            value = int(op.value)
            if lo <= value <= hi:
                return value
        return None

    def _single_use_def(self, op: ir.Operand, block_label: str,
                        kinds: tuple) -> Optional[ir.LIRInstr]:
        """The defining instruction if *op* is single-use, same-block, of a
        given kind, and eligible for folding."""
        if not ir.is_value(op):
            return None
        if self.use_count.get(op, 0) != 1:
            return None
        found = self.defs.get(op)
        if found is None:
            return None
        instr, label = found
        if label != block_label or not isinstance(instr, kinds):
            return None
        return instr

    # -- driver ------------------------------------------------------------------

    def run(self) -> MachineFunction:
        self._plan_folds()
        for blk in self.fn.blocks:
            self.mf.new_block(blk.label)
        self.cur = self.mf.block(self.fn.entry.label)
        self._emit_param_moves()
        for blk in self.fn.blocks:
            self.cur = self.mf.block(blk.label)
            for instr in blk.instrs:
                if instr.result is not None and id(instr) in self._fold_ids:
                    continue
                self._lower(instr, blk.label)
        self._remove_fallthrough_branches()
        self._remove_identity_moves()
        return self.mf

    def _emit_param_moves(self) -> None:
        flags = tuple(self.fn.param_is_float)
        regs = target.assign_arg_registers(flags, self.spec)
        for value, reg, flt in zip(self.fn.params, regs, flags):
            if self.use_count.get(value, 0) == 0:
                continue
            self._emit_move(self._vreg(value), reg, flt)

    # -- folding plan ---------------------------------------------------------------

    def _plan_folds(self) -> None:
        """Decide which PtrAdd/shift defs fold into load/store addressing."""
        self._fold_ids: Set[int] = set()
        self._addr_fold: Dict[int, Tuple] = {}  # id(load/store) -> plan
        for blk in self.fn.blocks:
            for instr in blk.instrs:
                if not isinstance(instr, (ir.Load, ir.Store)):
                    continue
                ptr = instr.ptr
                padd = self._single_use_def(ptr, blk.label, (ir.PtrAdd,))
                if padd is None:
                    continue
                imm = self._imm(padd.offset, 0, 32760)
                if imm is not None:
                    self._addr_fold[id(instr)] = ("ui", padd.base, imm)
                    self._fold_ids.add(id(padd))
                    continue
                shift = self._single_use_def(padd.offset, blk.label,
                                             (ir.BinOp,))
                if (
                    shift is not None
                    and shift.op == "<<"
                    and self._imm(shift.rhs, 3, 3) == 3
                    and not shift.is_float
                ):
                    self._addr_fold[id(instr)] = ("ro", padd.base, shift.lhs)
                    self._fold_ids.add(id(padd))
                    self._fold_ids.add(id(shift))

        # Compare-and-branch fusion: Cmp immediately before its CondBr.
        self._fused_cmps: Dict[int, ir.Cmp] = {}
        for blk in self.fn.blocks:
            if len(blk.instrs) < 2:
                continue
            term = blk.instrs[-1]
            prev = blk.instrs[-2]
            if (
                isinstance(term, ir.CondBr)
                and isinstance(prev, ir.Cmp)
                and ir.is_value(term.cond)
                and prev.result == term.cond
                and self.use_count.get(prev.result, 0) == 1
            ):
                self._fused_cmps[id(term)] = prev
                self._fold_ids.add(id(prev))

    # -- lowering ---------------------------------------------------------------------

    def _lower(self, instr: ir.LIRInstr, block_label: str) -> None:
        method = getattr(self, f"_sel_{type(instr).__name__}", None)
        if method is None:
            raise BackendError(f"isel cannot lower {type(instr).__name__}")
        method(instr, block_label)

    def _sel_Alloca(self, instr, block_label):  # pragma: no cover
        raise BackendError(
            f"{self.fn.symbol}: Alloca survived mem2reg (run mem2reg first)")

    def _sel_Copy(self, instr: ir.Copy, block_label: str) -> None:
        dst = self._vreg(instr.result)
        if isinstance(instr.value, ir.Const):
            self._materialize(instr.value, into=dst)
            return
        src = self._reg_of(instr.value)
        self._emit_move(dst, src, instr.is_float)

    def _sel_BinOp(self, instr: ir.BinOp, block_label: str) -> None:
        dst = self._vreg(instr.result)
        if instr.is_float:
            ops = {"+": Opcode.FADDDrr, "-": Opcode.FSUBDrr,
                   "*": Opcode.FMULDrr, "/": Opcode.FDIVDrr}
            lhs = self._reg_of(instr.lhs)
            rhs = self._reg_of(instr.rhs)
            self.emit(MachineInstr(ops[instr.op], (dst, lhs, rhs)))
            return
        op = instr.op
        if op in ("+", "-"):
            imm = self._imm(instr.rhs)
            if imm is not None:
                lhs = self._reg_of(instr.lhs)
                opc = Opcode.ADDXri if op == "+" else Opcode.SUBXri
                self.emit(MachineInstr(opc, (dst, lhs, imm)))
                return
            lhs = self._reg_of(instr.lhs)
            rhs = self._reg_of(instr.rhs)
            opc = Opcode.ADDXrr if op == "+" else Opcode.SUBXrr
            self.emit(MachineInstr(opc, (dst, lhs, rhs)))
            return
        if op == "*":
            lhs = self._reg_of(instr.lhs)
            rhs = self._reg_of(instr.rhs)
            self.emit(MachineInstr(Opcode.MADDXrrr, (dst, lhs, rhs, self.zero)))
            return
        if op in ("/", "%"):
            lhs = self._reg_of(instr.lhs)
            rhs = self._reg_of(instr.rhs)
            self._emit_div_zero_check(instr.rhs, rhs)
            if op == "/":
                self.emit(MachineInstr(Opcode.SDIVXrr, (dst, lhs, rhs)))
                return
            quot = self._fresh_vreg(False)
            self.emit(MachineInstr(Opcode.SDIVXrr, (quot, lhs, rhs)))
            self.emit(MachineInstr(Opcode.MSUBXrrr, (dst, quot, rhs, lhs)))
            return
        table = {"&": Opcode.ANDXrr, "|": Opcode.ORRXrs, "^": Opcode.EORXrr,
                 "<<": Opcode.LSLVXrr, ">>": Opcode.ASRVXrr}
        lhs = self._reg_of(instr.lhs)
        rhs = self._reg_of(instr.rhs)
        self.emit(MachineInstr(table[op], (dst, lhs, rhs)))

    def _emit_div_zero_check(self, rhs_op: ir.Operand, rhs_reg: str) -> None:
        if isinstance(rhs_op, ir.Const) and rhs_op.value != 0:
            return
        label = self._trap_div()
        self.emit(MachineInstr(Opcode.CBZX, (rhs_reg, Label(label))))

    def _trap_div(self) -> str:
        if self._trap_div_label is None:
            self._trap_div_label = "trap_div"
            blk = self.mf.new_block(self._trap_div_label)
            blk.append(MachineInstr(Opcode.BRK, (_TRAP_CODES["div"],)))
        return self._trap_div_label

    def _sel_Cmp(self, instr: ir.Cmp, block_label: str) -> None:
        dst = self._vreg(instr.result)
        self._emit_compare(instr)
        self.emit(MachineInstr(Opcode.CSETXi, (dst, _CMP_COND[instr.pred])))

    def _emit_compare(self, cmp: ir.Cmp) -> None:
        if cmp.operand_is_float:
            lhs = self._reg_of(cmp.lhs)
            rhs = self._reg_of(cmp.rhs)
            self.emit(MachineInstr(Opcode.FCMPDrr, (lhs, rhs)))
            return
        imm = self._imm(cmp.rhs)
        lhs = self._reg_of(cmp.lhs)
        if imm is not None:
            self.emit(MachineInstr(Opcode.SUBSXri, (self.zero, lhs, imm)))
            return
        rhs = self._reg_of(cmp.rhs)
        self.emit(MachineInstr(Opcode.SUBSXrr, (self.zero, lhs, rhs)))

    def _sel_Neg(self, instr: ir.Neg, block_label: str) -> None:
        dst = self._vreg(instr.result)
        src = self._reg_of(instr.value)
        if instr.is_float:
            self.emit(MachineInstr(Opcode.FNEGDr, (dst, src)))
        else:
            self.emit(MachineInstr(Opcode.SUBXrr, (dst, self.zero, src)))

    def _sel_Not(self, instr: ir.Not, block_label: str) -> None:
        dst = self._vreg(instr.result)
        src = self._reg_of(instr.value)
        one = self._fresh_vreg(False)
        self.emit(MachineInstr(Opcode.MOVZXi, (one, 1, 0)))
        self.emit(MachineInstr(Opcode.EORXrr, (dst, src, one)))

    def _sel_Convert(self, instr: ir.Convert, block_label: str) -> None:
        dst = self._vreg(instr.result)
        src = self._reg_of(instr.value)
        if instr.kind == "int_to_double":
            self.emit(MachineInstr(Opcode.SCVTFDX, (dst, src)))
        else:
            self.emit(MachineInstr(Opcode.FCVTZSXD, (dst, src)))

    def _sel_PtrAdd(self, instr: ir.PtrAdd, block_label: str) -> None:
        dst = self._vreg(instr.result)
        imm = self._imm(instr.offset)
        base = self._reg_of(instr.base)
        if imm is not None:
            self.emit(MachineInstr(Opcode.ADDXri, (dst, base, imm)))
        else:
            off = self._reg_of(instr.offset)
            self.emit(MachineInstr(Opcode.ADDXrr, (dst, base, off)))

    def _sel_GlobalAddr(self, instr: ir.GlobalAddr, block_label: str) -> None:
        dst = self._vreg(instr.result)
        self.emit(MachineInstr(Opcode.ADRP, (dst, Sym(instr.symbol))))
        self.emit(MachineInstr(Opcode.ADDlo, (dst, dst, Sym(instr.symbol))))

    def _sel_FuncAddr(self, instr: ir.FuncAddr, block_label: str) -> None:
        dst = self._vreg(instr.result)
        self.emit(MachineInstr(Opcode.ADRP, (dst, Sym(instr.symbol))))
        self.emit(MachineInstr(Opcode.ADDlo, (dst, dst, Sym(instr.symbol))))

    def _sel_Load(self, instr: ir.Load, block_label: str) -> None:
        dst = self._vreg(instr.result)
        is_float = self.value_float.get(instr.result, False)
        plan = self._addr_fold.get(id(instr))
        if plan is not None:
            kind, base_op, extra = plan
            base = self._reg_of(base_op)
            if kind == "ui":
                opc = Opcode.LDRDui if is_float else Opcode.LDRXui
                self.emit(MachineInstr(opc, (dst, base, extra)))
            else:
                idx = self._reg_of(extra)
                opc = Opcode.LDRDroX if is_float else Opcode.LDRXroX
                self.emit(MachineInstr(opc, (dst, base, idx)))
            return
        ptr = self._reg_of(instr.ptr)
        opc = Opcode.LDRDui if is_float else Opcode.LDRXui
        self.emit(MachineInstr(opc, (dst, ptr, 0)))

    def _sel_Store(self, instr: ir.Store, block_label: str) -> None:
        is_float = self._op_is_float(instr.value) or instr.is_float
        src = self._reg_of(instr.value)
        plan = self._addr_fold.get(id(instr))
        if plan is not None:
            kind, base_op, extra = plan
            base = self._reg_of(base_op)
            if kind == "ui":
                opc = Opcode.STRDui if is_float else Opcode.STRXui
                self.emit(MachineInstr(opc, (src, base, extra)))
            else:
                idx = self._reg_of(extra)
                opc = Opcode.STRDroX if is_float else Opcode.STRXroX
                self.emit(MachineInstr(opc, (src, base, idx)))
            return
        ptr = self._reg_of(instr.ptr)
        opc = Opcode.STRDui if is_float else Opcode.STRXui
        self.emit(MachineInstr(opc, (src, ptr, 0)))

    def _sel_Call(self, instr: ir.Call, block_label: str) -> None:
        # Indirect targets go through the x16 scratch (never allocated).
        indirect = instr.callee_value is not None
        if indirect:
            callee_reg = self._reg_of(instr.callee_value)
            self.emit(mov_rr(self.call_scratch, callee_reg))
        flags = tuple(self._op_is_float(a) for a in instr.args)
        regs = target.assign_arg_registers(flags, self.spec)
        for arg, reg, flt in zip(instr.args, regs, flags):
            if isinstance(arg, ir.Const):
                self._materialize(arg, into=reg)
            else:
                self._emit_move(reg, self._vreg(arg), flt)
        implicit_defs: List[str] = []
        if instr.result is not None:
            implicit_defs.append(
                target.return_register(instr.ret_is_float, self.spec))
        if instr.throws:
            implicit_defs.append(self.error_reg)
        if indirect:
            self.emit(MachineInstr(Opcode.BLR, (self.call_scratch,),
                                   implicit_uses=tuple(regs),
                                   implicit_defs=tuple(implicit_defs)))
        else:
            self.emit(MachineInstr(Opcode.BL, (Sym(instr.callee),),
                                   implicit_uses=tuple(regs),
                                   implicit_defs=tuple(implicit_defs)))
        if instr.result is not None:
            is_float = instr.ret_is_float
            self._emit_move(self._vreg(instr.result),
                            target.return_register(is_float, self.spec),
                            is_float)

    def _sel_ReadError(self, instr: ir.ReadError, block_label: str) -> None:
        self.emit(mov_rr(self._vreg(instr.result), self.error_reg))

    def _sel_SetError(self, instr: ir.SetError, block_label: str) -> None:
        if isinstance(instr.value, ir.Const):
            self._materialize(instr.value, into=self.error_reg)
        else:
            self.emit(mov_rr(self.error_reg, self._vreg(instr.value)))

    def _sel_Br(self, instr: ir.Br, block_label: str) -> None:
        self.emit(MachineInstr(Opcode.B, (Label(instr.target),)))

    def _sel_CondBr(self, instr: ir.CondBr, block_label: str) -> None:
        fused = self._fused_cmps.get(id(instr))
        if fused is not None:
            self._emit_compare(fused)
            self.emit(MachineInstr(Opcode.Bcc, (_CMP_COND[fused.pred],
                                                Label(instr.true_target))))
            self.emit(MachineInstr(Opcode.B, (Label(instr.false_target),)))
            return
        if isinstance(instr.cond, ir.Const):
            target_label = (instr.true_target if instr.cond.value
                            else instr.false_target)
            self.emit(MachineInstr(Opcode.B, (Label(target_label),)))
            return
        cond = self._reg_of(instr.cond)
        self.emit(MachineInstr(Opcode.CBNZX, (cond, Label(instr.true_target))))
        self.emit(MachineInstr(Opcode.B, (Label(instr.false_target),)))

    def _sel_Ret(self, instr: ir.Ret, block_label: str) -> None:
        if instr.value is not None:
            is_float = self._op_is_float(instr.value) or instr.is_float
            reg = target.return_register(is_float, self.spec)
            if isinstance(instr.value, ir.Const):
                self._materialize(instr.value, into=reg)
            else:
                self._emit_move(reg, self._vreg(instr.value), is_float)
        self.emit(MachineInstr(Opcode.RET))

    def _sel_Trap(self, instr: ir.Trap, block_label: str) -> None:
        code = _TRAP_CODES.get(instr.reason, 4)
        self.emit(MachineInstr(Opcode.BRK, (code,)))

    def _sel_Unreachable(self, instr: ir.Unreachable, block_label: str) -> None:
        self.emit(MachineInstr(Opcode.BRK, (_TRAP_CODES["unreachable"],)))

    def _sel_Phi(self, instr, block_label):  # pragma: no cover
        raise BackendError(
            f"{self.fn.symbol}: phi survived phi-elimination")

    # -- cleanups ----------------------------------------------------------------------

    def _remove_fallthrough_branches(self) -> None:
        for i, blk in enumerate(self.mf.blocks[:-1]):
            nxt = self.mf.blocks[i + 1].label
            if blk.instrs and blk.instrs[-1].opcode is Opcode.B:
                op = blk.instrs[-1].operands[0]
                if isinstance(op, Label) and op.name == nxt:
                    blk.instrs.pop()

    def _remove_identity_moves(self) -> None:
        for blk in self.mf.blocks:
            blk.instrs = [
                mi for mi in blk.instrs
                if not (
                    mi.opcode is Opcode.ORRXrs
                    and mi.operands[1] == self.zero
                    and mi.operands[0] == mi.operands[2]
                ) and not (
                    mi.opcode is Opcode.FMOVDr
                    and mi.operands[0] == mi.operands[1]
                )
            ]


def select_function(fn: ir.LIRFunction,
                    spec: Optional[TargetSpec] = None) -> MachineFunction:
    """Run instruction selection on one LIR function."""
    return FunctionISel(fn, spec).run()
