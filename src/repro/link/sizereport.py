"""Per-build size breakdown and the baseline-diff regression gate.

This is the reproduction of the bundle-size monitoring workflow the
production iOS apps run (SNIPPETS.md snippet 2): every build can emit a
canonical per-module, per-target breakdown of where the binary's bytes
live — text, outlined text, alignment padding, per-function metadata,
data — and CI diffs it against a committed baseline, failing on text
growth past a threshold.

Everything is computed from the linked :class:`~repro.link.binary.BinaryImage`
(the artifact whose bytes actually ship), not from intermediate IR:

* per-module __text bytes come from the function extents, split into
  regular vs outlined functions;
* alignment padding is attributed to the function (hence module) whose
  start forced it, and the per-module paddings sum exactly to
  ``image.alignment_padding_bytes``;
* metadata is ``metadata_bytes_per_function`` per function;
* data is the module's __data extent span (equal to its exact data size
  under the default module-order layout).

The JSON shape (schema ``size-report/1``) is canonical — sorted keys,
stable field set — so two reports diff textually and a committed baseline
stays reviewable.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.link.binary import BinaryImage

#: Schema tag stamped into every report.
SCHEMA = "size-report/1"

#: Per-module/total byte categories, in render order.
_CATEGORIES = ("text_bytes", "outlined_bytes", "padding_bytes",
               "metadata_bytes", "data_bytes")


def module_breakdown(image: BinaryImage) -> Dict[str, Dict[str, int]]:
    """Byte accounting per source module, from the linked image.

    Invariant (asserted by the unit tests): summing ``text_bytes +
    outlined_bytes + padding_bytes`` over all modules equals
    ``image.text_bytes``, and the paddings sum to
    ``image.alignment_padding_bytes``.
    """
    rows: Dict[str, Dict[str, int]] = {}

    def row(module: str) -> Dict[str, int]:
        if module not in rows:
            rows[module] = {name: 0 for name in _CATEGORIES}
            rows[module]["functions"] = 0
            rows[module]["outlined_functions"] = 0
        return rows[module]

    prev_end = image.text_base
    for ext in image.functions:
        r = row(ext.source_module or "?")
        r["padding_bytes"] += ext.start - prev_end
        size = ext.end - ext.start
        if ext.is_outlined:
            r["outlined_bytes"] += size
            r["outlined_functions"] += 1
        else:
            r["text_bytes"] += size
        r["functions"] += 1
        r["metadata_bytes"] += image.metadata_bytes_per_function
        prev_end = ext.end
    for module, (lo, hi) in image.data_extent_of_module.items():
        row(module)["data_bytes"] += hi - lo
    return {name: rows[name] for name in sorted(rows)}


def target_summary(image: BinaryImage) -> Dict[str, int]:
    """Whole-image totals for one target slice."""
    outlined = sum(ext.end - ext.start
                   for ext in image.functions if ext.is_outlined)
    return {
        "text_bytes": (image.text_bytes - outlined
                       - image.alignment_padding_bytes),
        "outlined_bytes": outlined,
        "padding_bytes": image.alignment_padding_bytes,
        "metadata_bytes": image.metadata_bytes,
        "data_bytes": image.data_bytes,
        "total_text_bytes": image.text_bytes,
        "binary_bytes": image.binary_bytes,
        "functions": image.num_functions,
        "outlined_functions": sum(1 for ext in image.functions
                                  if ext.is_outlined),
    }


def build_size_report(results: Dict[str, object]) -> Dict[str, object]:
    """The canonical report for one (possibly sliced) build.

    *results* maps target name -> :class:`~repro.pipeline.BuildResult`
    (the shape :func:`repro.pipeline.build_targets` returns; wrap a
    single result as ``{result.config.target: result}``).  Strip totals
    ride along from each slice's :class:`~repro.pipeline.BuildReport`.
    """
    targets: Dict[str, object] = {}
    for name in sorted(results):
        result = results[name]
        summary = target_summary(result.image)
        summary["stripped_functions"] = result.report.stripped_functions
        summary["stripped_bytes"] = result.report.stripped_bytes
        targets[name] = {
            "totals": summary,
            "modules": module_breakdown(result.image),
        }
    return {"schema": SCHEMA, "targets": targets}


def canonical_json(report: Dict[str, object]) -> str:
    """Byte-stable serialization: sorted keys, fixed separators."""
    return json.dumps(report, indent=2, sort_keys=True)


def render_report(report: Dict[str, object]) -> List[str]:
    """Human-readable rendering (the default ``repro size`` output)."""
    lines: List[str] = []
    for target, payload in report.get("targets", {}).items():
        totals = payload["totals"]
        lines.append(f"target {target}:")
        lines.append(
            f"  text {totals['text_bytes']}B + outlined "
            f"{totals['outlined_bytes']}B + padding "
            f"{totals['padding_bytes']}B = __text "
            f"{totals['total_text_bytes']}B; data {totals['data_bytes']}B, "
            f"metadata {totals['metadata_bytes']}B, binary "
            f"{totals['binary_bytes']}B")
        if totals.get("stripped_functions"):
            lines.append(f"  stripped {totals['stripped_functions']} "
                         f"function(s) / {totals['stripped_bytes']}B at link")
        header = (f"  {'module':<16} {'text':>8} {'outlined':>9} "
                  f"{'padding':>8} {'metadata':>9} {'data':>8} {'fns':>5}")
        lines.append(header)
        for module, r in payload["modules"].items():
            lines.append(f"  {module:<16} {r['text_bytes']:>8} "
                         f"{r['outlined_bytes']:>9} {r['padding_bytes']:>8} "
                         f"{r['metadata_bytes']:>9} {r['data_bytes']:>8} "
                         f"{r['functions']:>5}")
    return lines


def diff_reports(baseline: Dict[str, object],
                 current: Dict[str, object],
                 max_text_growth_pct: float = 1.0
                 ) -> Tuple[List[str], List[str]]:
    """Compare two reports; returns ``(lines, failures)``.

    The gate is on ``total_text_bytes`` per target (the number the paper
    optimizes): growth beyond *max_text_growth_pct* percent over the
    baseline is a failure.  Targets present on only one side are reported
    but do not fail — adding a slice is not a regression.
    """
    lines: List[str] = []
    failures: List[str] = []
    base_targets = baseline.get("targets", {})
    cur_targets = current.get("targets", {})
    for target in sorted(set(base_targets) | set(cur_targets)):
        if target not in base_targets:
            lines.append(f"{target}: new target (no baseline)")
            continue
        if target not in cur_targets:
            lines.append(f"{target}: removed (was in baseline)")
            continue
        base = base_targets[target]["totals"]
        cur = cur_targets[target]["totals"]
        before = int(base["total_text_bytes"])
        after = int(cur["total_text_bytes"])
        delta = after - before
        pct = (100.0 * delta / before) if before else 0.0
        verdict = "ok"
        if before and pct > max_text_growth_pct:
            verdict = f"FAIL (> {max_text_growth_pct:g}% growth)"
            failures.append(
                f"{target}: __text grew {delta:+d}B ({pct:+.2f}%), limit "
                f"{max_text_growth_pct:g}%")
        lines.append(f"{target}: __text {before}B -> {after}B "
                     f"({delta:+d}B, {pct:+.2f}%) {verdict}")
        for key in ("data_bytes", "metadata_bytes", "binary_bytes"):
            b, c = int(base.get(key, 0)), int(cur.get(key, 0))
            if b != c:
                lines.append(f"{target}:   {key} {b}B -> {c}B ({c - b:+d}B)")
    return lines, failures
