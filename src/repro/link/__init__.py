"""System linker and binary image."""

from repro.link.binary import BinaryImage, FunctionExtent
from repro.link.linker import link_binary

__all__ = ["BinaryImage", "FunctionExtent", "link_binary"]
