"""System linker: machine modules -> :class:`BinaryImage`.

Lays out text function-by-function in link order, resolves local labels and
cross-module symbols, materialises data globals (with immortal object
headers for const arrays and string literals), and assigns runtime stubs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.target import get_target
from repro.target.spec import TargetSpec

from repro.errors import LinkError
from repro.link.funclayout import order_functions
from repro.isa.instructions import (
    INSTR_BYTES,
    Label,
    MachineFunction,
    MachineGlobal,
    MachineModule,
    Opcode,
    Sym,
)
from repro.link.binary import (
    BinaryImage,
    FunctionExtent,
    PAGE_SIZE,
    RUNTIME_STUB_BASE,
    TEXT_BASE,
)
from repro.obs import trace
from repro.runtime import layout
from repro.runtime.names import ALL_RUNTIME_SYMBOLS


def link_binary(modules: Sequence[MachineModule],
                entry_symbol: Optional[str] = None,
                outlined_layout: str = "appended",
                target: Union[str, TargetSpec, None] = None,
                layout: str = "source",
                layout_profile=None,
                layout_seed: int = 0) -> BinaryImage:
    """Link machine modules into an executable image.

    ``outlined_layout`` controls where outlined functions land in __text:

    * ``"appended"`` — wherever the outliner appended them (what the paper
      shipped; outlined code clusters at the end of its module);
    * ``"near-callers"`` — each outlined function is placed directly after
      the function with the most call sites to it, improving the locality
      of outlined code (the paper's future work #3).

    ``layout`` selects the whole-image function ordering (see
    :mod:`repro.link.funclayout`): ``"source"`` keeps link order,
    ``"callgraph-c3"`` clusters hot call chains using *layout_profile*
    (a :class:`~repro.sim.profile.LayoutProfile`; falls back to a static
    call-site census when ``None``), ``"random"`` is a *layout_seed*-ed
    shuffle.  ``near-callers`` composes only with ``layout="source"``;
    other combinations raise :class:`LinkError` (they would break the
    outlined-body adjacency contract).

    ``target`` selects the width/alignment model: on a fixed-width target
    the classic uniform layout is kept (address = base + index * 4); on a
    variable-width target each instruction advances by its encoded width
    and function starts are padded up to ``spec.function_alignment``.
    """
    spec = get_target(target)
    image = BinaryImage(entry_symbol=entry_symbol, target_name=spec.name,
                        metadata_bytes_per_function=spec.function_metadata_bytes)
    # The uniform address rule holds iff every instruction has one width
    # and alignment can never insert padding between functions.
    uniform = (spec.is_fixed_width
               and spec.function_alignment <= spec.widths.default_bytes
               and TEXT_BASE % spec.function_alignment == 0)

    input_functions: List[MachineFunction] = []
    for module in modules:
        input_functions.extend(module.functions)
    with trace.span("layout", target=spec.name, mode=layout,
                    outlined=outlined_layout):
        decision = order_functions(input_functions, layout=layout,
                                   outlined_layout=outlined_layout,
                                   profile=layout_profile, seed=layout_seed,
                                   spec=spec)
    ordered_functions = decision.order
    # Permutation guard: an ordering that drops, duplicates, or invents a
    # function must die here as a typed error, never as an image that only
    # verify_image (or worse, the simulator) can reject.
    if sorted(fn.name for fn in ordered_functions) != \
            sorted(fn.name for fn in input_functions):
        raise LinkError(
            f"layout {layout!r}/{outlined_layout!r} is not a permutation of "
            f"the input: {len(input_functions)} functions in, "
            f"{len(ordered_functions)} out")

    # Pass 1: lay out functions and record symbol addresses.
    addr = TEXT_BASE
    label_addr: Dict[Tuple[str, str], int] = {}
    all_functions: List[MachineFunction] = []
    instr_addrs: List[int] = []
    padding = 0
    for fn in ordered_functions:
        if fn.name in image.symbols:
            raise LinkError(f"duplicate symbol {fn.name!r}")
        aligned = spec.align_up(addr)
        padding += aligned - addr
        addr = aligned
        image.symbols[fn.name] = addr
        start = addr
        for blk in fn.blocks:
            label_addr[(fn.name, blk.label)] = addr
            if uniform:
                addr += INSTR_BYTES * len(blk.instrs)
            else:
                for instr in blk.instrs:
                    instr_addrs.append(addr)
                    addr += spec.instr_bytes(instr)
        image.functions.append(
            FunctionExtent(name=fn.name, start=start, end=addr,
                           source_module=fn.source_module,
                           is_outlined=fn.is_outlined))
        all_functions.append(fn)
    if not uniform:
        image.instr_addrs = instr_addrs
        image.text_end_addr = addr
        image.alignment_padding_bytes = padding

    # Runtime stubs for unresolved runtime symbols.
    stub_addr = RUNTIME_STUB_BASE
    for name in sorted(ALL_RUNTIME_SYMBOLS):
        image.symbols.setdefault(name, stub_addr)
        image.runtime_stubs[stub_addr] = name
        stub_addr += INSTR_BYTES

    # Pass 2: data layout (in the order the IR linker fixed).
    data_base = _page_align(addr)
    image.data_base = data_base
    daddr = data_base
    module_extents: Dict[str, List[int]] = {}
    for module in modules:
        for gbl in module.globals:
            if gbl.name in image.symbols:
                raise LinkError(f"duplicate data symbol {gbl.name!r}")
            image.symbols[gbl.name] = daddr
            size = _emit_global(image, gbl, daddr)
            module_extents.setdefault(gbl.origin_module, []).extend(
                [daddr, daddr + size])
            daddr += size
    image.data_end = daddr
    for name, points in module_extents.items():
        image.data_extent_of_module[name] = (min(points), max(points))

    # Pass 3: flatten instructions and resolve references.
    for fn in all_functions:
        for blk in fn.blocks:
            for instr in blk.instrs:
                idx = len(image.instrs)
                image.instrs.append(instr)
                _resolve(image, fn, instr, idx, label_addr)

    metrics = trace.metrics()
    if metrics.enabled:
        metrics.set_gauge("link.alignment_padding_bytes",
                          image.alignment_padding_bytes)
        metrics.set_gauge("link.input_modules", len(modules))
        metrics.set_gauge("link.functions", len(all_functions))
        metrics.set_gauge("link.outlined_functions",
                          sum(1 for fn in all_functions if fn.is_outlined))
        metrics.set_gauge("link.text_bytes", image.text_bytes)
        metrics.set_gauge("link.data_bytes", image.data_bytes)
        metrics.set_gauge("link.layout_profile_edges", decision.profile_edges)
        metrics.set_gauge("link.layout_clusters", decision.clusters)
        metrics.set_gauge("link.layout_used_profile",
                          int(decision.used_profile))
    return image


def _page_align(addr: int) -> int:
    rem = addr % PAGE_SIZE
    return addr + (PAGE_SIZE - rem) if rem else addr


def _resolve(image: BinaryImage, fn: MachineFunction, instr, idx: int,
             label_addr: Dict[Tuple[str, str], int]) -> None:
    target = instr.branch_target()
    if target is not None:
        key = (fn.name, target)
        if key not in label_addr:
            raise LinkError(f"{fn.name}: unresolved local label {target!r}")
        image.resolved_target[idx] = label_addr[key]
        return
    if instr.opcode is Opcode.BL or instr.is_tail_call:
        sym = instr.operands[0]
        if isinstance(sym, Sym):
            if sym.name not in image.symbols:
                raise LinkError(f"{fn.name}: undefined symbol {sym.name!r}")
            image.resolved_target[idx] = image.symbols[sym.name]
        return
    if instr.opcode in (Opcode.ADRP, Opcode.ADDlo):
        for op in instr.operands:
            if isinstance(op, Sym):
                if op.name not in image.symbols:
                    raise LinkError(
                        f"{fn.name}: undefined symbol {op.name!r}")
                image.resolved_sym[idx] = image.symbols[op.name]
                return


def _emit_global(image: BinaryImage, gbl: MachineGlobal, addr: int) -> int:
    """Write a global's initial bytes into data_init; returns its size."""
    mem = image.data_init
    if isinstance(gbl.values, str):
        # Immortal string object followed by its character buffer.
        text = gbl.values
        buf = addr + layout.STRING_OBJECT_BYTES
        mem[addr + layout.HEADER_TYPEID] = layout.TYPE_ID_STRING
        mem[addr + layout.HEADER_RC] = layout.IMMORTAL_RC
        mem[addr + layout.STRING_COUNT] = len(text)
        mem[addr + layout.STRING_BUF] = buf
        for i, ch in enumerate(text):
            mem[buf + 8 * i] = ord(ch)
        return layout.STRING_OBJECT_BYTES + 8 * max(1, len(text))
    if gbl.is_object:
        # Immortal array object followed by its payload buffer.
        values = gbl.values
        buf = addr + layout.ARRAY_OBJECT_BYTES
        kind = layout.ELEM_FLOAT if gbl.elem_is_float else layout.ELEM_PLAIN
        mem[addr + layout.HEADER_TYPEID] = (layout.TYPE_ID_ARRAY | (kind << 8))
        mem[addr + layout.HEADER_RC] = layout.IMMORTAL_RC
        mem[addr + layout.ARRAY_COUNT] = len(values)
        mem[addr + layout.ARRAY_CAPACITY] = len(values)
        mem[addr + layout.ARRAY_BUF] = buf
        for i, value in enumerate(values):
            mem[buf + 8 * i] = value
        return layout.ARRAY_OBJECT_BYTES + 8 * max(1, len(values))
    # Raw slot(s).
    values = gbl.values
    for i, value in enumerate(values):
        mem[addr + 8 * i] = value
    return 8 * max(1, len(values))
