"""Final binary image: a Mach-O-like executable model.

The system linker flattens machine modules into:

* ``__text`` — all instructions at 4-byte granularity, function by function
  in link order, with every branch/symbol reference resolved to an absolute
  address;
* ``__data`` — globals in the order the IR linker chose (this ordering is
  the subject of the Section VI-3 data-layout experiment);
* a symbol table and per-function metadata (whose bytes are why the whole
  binary shrinks slightly less than the code section in Figure 12).

Runtime functions get stub addresses in a reserved range; the interpreter
dispatches them natively.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro.isa.instructions import INSTR_BYTES, MachineFunction, MachineGlobal, MachineInstr
from repro.target.arm64 import ARM64
from repro.runtime import layout

TEXT_BASE = 0x1_0000_0000
PAGE_SIZE = 4096
#: Runtime stubs live below the text base; each gets one slot.
RUNTIME_STUB_BASE = 0x0_F000_0000
STACK_BASE = 0x7_FFFF_F000
HEAP_BASE = 0x2_0000_0000


@dataclass
class FunctionExtent:
    name: str
    start: int  # address
    end: int    # address one past the last instruction
    source_module: str = ""
    is_outlined: bool = False


@dataclass
class BinaryImage:
    """A linked, loadable executable."""

    instrs: List[MachineInstr] = field(default_factory=list)
    text_base: int = TEXT_BASE
    #: Per-instruction resolved branch/symbol target address (by index).
    resolved_target: Dict[int, int] = field(default_factory=dict)
    #: Per-instruction resolved data/function symbol address (ADRP/ADDlo).
    resolved_sym: Dict[int, int] = field(default_factory=dict)
    symbols: Dict[str, int] = field(default_factory=dict)
    runtime_stubs: Dict[int, str] = field(default_factory=dict)
    functions: List[FunctionExtent] = field(default_factory=list)
    #: Initial data memory (word address -> int or float).
    data_init: Dict[int, Union[int, float]] = field(default_factory=dict)
    data_base: int = 0
    data_end: int = 0
    entry_symbol: Optional[str] = None
    #: Data addresses grouped by origin module (for locality metrics).
    data_extent_of_module: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: Name of the target this image was linked for.
    target_name: str = "arm64"
    #: Per-instruction start addresses for variable-width layouts; ``None``
    #: means the uniform fixed-width address rule (base + i * INSTR_BYTES).
    instr_addrs: Optional[List[int]] = None
    #: One past the last instruction byte (0 = derive from the fixed rule).
    text_end_addr: int = 0
    #: Function-start alignment padding the linker inserted into __text.
    alignment_padding_bytes: int = 0
    #: Per-function metadata bytes (symbol table entry + unwind info).
    metadata_bytes_per_function: int = ARM64.function_metadata_bytes

    # -- size accounting (what Figure 12 plots) ------------------------------

    @property
    def text_bytes(self) -> int:
        return self.text_end_address() - self.text_base

    @property
    def data_bytes(self) -> int:
        return self.data_end - self.data_base

    @property
    def metadata_bytes(self) -> int:
        return self.metadata_bytes_per_function * len(self.functions)

    @property
    def binary_bytes(self) -> int:
        return self.text_bytes + self.data_bytes + self.metadata_bytes

    @property
    def num_functions(self) -> int:
        return len(self.functions)

    # -- canonical serialization (determinism harness) -----------------------

    def text_section(self) -> bytes:
        """Canonical byte serialization of ``__text``.

        One record per instruction: its rendered form plus the resolved
        branch/symbol addresses.  Two images with equal text sections decode
        and execute identically; the determinism tests compare these bytes
        across serial/parallel/cached builds.
        """
        lines = []
        for i, instr in enumerate(self.instrs):
            target = self.resolved_target.get(i, -1)
            sym = self.resolved_sym.get(i, -1)
            lines.append(f"{instr.render()}|{target}|{sym}")
        return "\n".join(lines).encode("utf-8")

    def data_section(self) -> bytes:
        """Canonical byte serialization of ``__data`` (address -> value)."""
        items = ";".join(f"{addr}:{value!r}"
                         for addr, value in sorted(self.data_init.items()))
        return f"{self.data_base}..{self.data_end}|{items}".encode("utf-8")

    # -- lookup helpers --------------------------------------------------------

    def text_end_address(self) -> int:
        """One past the last instruction byte of __text."""
        if self.text_end_addr:
            return self.text_end_addr
        return self.text_base + len(self.instrs) * INSTR_BYTES

    def addr_of_index(self, index: int) -> int:
        if self.instr_addrs is not None:
            return self.instr_addrs[index]
        return self.text_base + index * INSTR_BYTES

    def index_of_addr(self, addr: int) -> int:
        """Index of the instruction at *addr*.

        For an address between instructions (alignment padding, or one past
        a function end) this returns the index of the *next* instruction —
        so ``index_of_addr(extent.end) - 1`` is always the extent's last
        instruction, on fixed- and variable-width layouts alike.
        """
        if self.instr_addrs is not None:
            return bisect_left(self.instr_addrs, addr)
        return (addr - self.text_base) // INSTR_BYTES

    def is_instr_addr(self, addr: int) -> bool:
        """True when *addr* is the start of an instruction."""
        if self.instr_addrs is not None:
            i = bisect_left(self.instr_addrs, addr)
            return i < len(self.instr_addrs) and self.instr_addrs[i] == addr
        return (self.text_base <= addr < self.text_end_address()
                and (addr - self.text_base) % INSTR_BYTES == 0)

    def function_at(self, addr: int) -> Optional[FunctionExtent]:
        # Binary search over sorted extents.
        lo, hi = 0, len(self.functions) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            ext = self.functions[mid]
            if addr < ext.start:
                hi = mid - 1
            elif addr >= ext.end:
                lo = mid + 1
            else:
                return ext
        return None

    def entry_address(self) -> int:
        if self.entry_symbol is None or self.entry_symbol not in self.symbols:
            raise KeyError(f"no entry symbol ({self.entry_symbol!r})")
        return self.symbols[self.entry_symbol]
