"""Function-ordering stage of the system linker.

PR 4 gave the linker exact per-instruction addresses and the timing model
line-straddle accounting; this module is the optimization that substrate
was built for: *where* each function lands in ``__text`` decides which
icache lines, iTLB entries, and text pages a cold span touches.  Three
orderings sit behind ``BuildConfig.layout``:

* ``"source"`` — link order as the modules arrived (the baseline every
  prior PR shipped; bit-identical to the pre-layout-stage linker);
* ``"callgraph-c3"`` — C3-style call-chain clustering (*Optimizing
  Function Layout for Mobile Applications*, arXiv 2211.09285): each
  function starts as its own cluster, callees are appended to their
  hottest caller's cluster most-frequent-edge first under a page-size
  budget, and clusters are emitted by heat density — hot call chains
  become physically adjacent code;
* ``"random"`` — a seeded shuffle, the experiment's control arm.

Edge weights come from a :class:`~repro.sim.profile.LayoutProfile`
collected by the simulator; without a profile the pass falls back to
static call-site counts, which keeps ``callgraph-c3`` deterministic and
usable before any run exists.

The pre-existing ``outlined_layout="near-callers"`` placement (the
paper's future work #3) lives here too, as the outlined-function special
case of the same ordering stage.  It asserts a *physical adjacency*
between each outlined body and its busiest caller; reordering afterwards
would silently break that adjacency and re-pack clusters whose byte
budget was computed against the target's function-alignment rule, so the
combination is rejected up front with a typed :class:`LinkError` (see
:func:`validate_layout_request`).

Every ordering must be a permutation of its input — the linker enforces
that (again with a typed ``LinkError``) rather than letting a buggy
ordering produce an image that only the post-link verifier can reject.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import LinkError
from repro.isa.instructions import MachineFunction
from repro.target.spec import TargetSpec

#: Valid ``BuildConfig.layout`` values.
LAYOUT_MODES = ("source", "callgraph-c3", "random")
#: Valid ``BuildConfig.outlined_layout`` values.
OUTLINED_LAYOUTS = ("appended", "near-callers")

#: C3 cluster byte budget: once a cluster reaches a text page, appending
#: more functions cannot improve page locality and starts hurting the
#: density ordering, so merging stops there (arXiv 2211.09285, §4).
C3_CLUSTER_BUDGET_BYTES = 4096


@dataclass
class LayoutDecision:
    """The ordering stage's output plus what the obs layer reports."""

    order: List[MachineFunction]
    mode: str
    #: Distinct caller->callee edges that carried weight into the pass.
    profile_edges: int = 0
    #: Clusters emitted by callgraph-c3 (0 for other modes).
    clusters: int = 0
    #: True when edge weights came from an execution profile (False =
    #: static call-site census fallback, or a mode that uses no weights).
    used_profile: bool = False


def validate_layout_request(layout: str, outlined_layout: str,
                            spec: TargetSpec) -> None:
    """Reject invalid or contradictory layout requests with a typed error.

    ``near-callers`` + a reordering layout is the combination that used
    to be expressible only as silent breakage: near-callers guarantees
    each outlined body sits directly after its busiest caller, and its
    byte accounting (like the outliner cost model's
    ``call_site_alignment_slack``) is computed against the target's
    function-alignment rule for *that* adjacency.  A later reorder both
    destroys the adjacency and re-pads every moved function, so the
    linker refuses the request instead of linking an image whose layout
    contract is already broken.
    """
    if layout not in LAYOUT_MODES:
        raise LinkError(f"unknown layout {layout!r}; expected one of: "
                        f"{', '.join(LAYOUT_MODES)}")
    if outlined_layout not in OUTLINED_LAYOUTS:
        raise LinkError(f"unknown outlined layout {outlined_layout!r}")
    if outlined_layout == "near-callers" and layout != "source":
        raise LinkError(
            f"outlined_layout='near-callers' requires layout='source': "
            f"layout={layout!r} would reorder functions after near-caller "
            f"placement, breaking the outlined-body adjacency guarantee "
            f"and the {spec.function_alignment}-byte function-alignment "
            f"accounting it was priced under on target {spec.name!r}")


def order_functions(functions: List[MachineFunction], *,
                    layout: str = "source",
                    outlined_layout: str = "appended",
                    profile=None,
                    seed: int = 0,
                    spec: TargetSpec) -> LayoutDecision:
    """Produce the final ``__text`` function order.

    *profile* is a :class:`~repro.sim.profile.LayoutProfile` (or any
    object with an ``edge_weights()`` returning ``{(caller, callee):
    count}``); ``None`` selects the static call-site census.
    """
    validate_layout_request(layout, outlined_layout, spec)
    ordered = list(functions)
    if outlined_layout == "near-callers":
        ordered = order_outlined_near_callers(ordered)
    if layout == "source":
        return LayoutDecision(order=ordered, mode=layout)
    if layout == "random":
        rng = random.Random(seed)
        rng.shuffle(ordered)
        return LayoutDecision(order=ordered, mode=layout)
    # callgraph-c3
    if profile is not None:
        weights = {edge: count
                   for edge, count in profile.edge_weights().items()
                   if count > 0}
        used_profile = True
    else:
        weights = _static_edge_weights(ordered)
        used_profile = False
    order, clusters = _c3_order(ordered, weights, spec)
    return LayoutDecision(order=order, mode=layout,
                          profile_edges=len(weights), clusters=clusters,
                          used_profile=used_profile)


def _static_edge_weights(
        functions: List[MachineFunction]) -> Dict[Tuple[str, str], int]:
    """Call-site census: caller->callee edge weight = number of direct
    call/tail-call sites.  The profile-free fallback for callgraph-c3."""
    names = {fn.name for fn in functions}
    weights: Dict[Tuple[str, str], int] = {}
    for fn in functions:
        for instr in fn.instructions():
            callee = instr.callee()
            if callee in names and callee != fn.name:
                key = (fn.name, callee)
                weights[key] = weights.get(key, 0) + 1
    return weights


def _c3_order(functions: List[MachineFunction],
              weights: Dict[Tuple[str, str], int],
              spec: TargetSpec) -> Tuple[List[MachineFunction], int]:
    """Call-chain clustering (C3), fully deterministic.

    1. every function is a singleton cluster, sized by its padded text
       bytes under *spec* (the same ``align_up`` rule the linker applies);
    2. callees in decreasing incoming weight are appended to the cluster
       of their hottest caller, unless already co-clustered, the merge
       would exceed :data:`C3_CLUSTER_BUDGET_BYTES`, or the caller's
       cluster already *contains* the callee's head mid-chain;
    3. clusters are emitted by decreasing heat density (cluster weight /
       cluster bytes), ties broken by the earliest original position —
       cold never-called code sinks to the end in stable source order.
    """
    index = {fn.name: i for i, fn in enumerate(functions)}
    by_name = {fn.name: fn for fn in functions}
    # Drop self-edges and edges whose endpoints are not being laid out.
    edges = {(c, f): w for (c, f), w in weights.items()
             if c in index and f in index and c != f and w > 0}

    cluster_of: Dict[str, int] = {fn.name: i for i, fn in enumerate(functions)}
    members: Dict[int, List[str]] = {i: [fn.name]
                                     for i, fn in enumerate(functions)}
    sizes: Dict[int, int] = {i: spec.function_text_bytes(fn)
                             for i, fn in enumerate(functions)}

    incoming: Dict[str, int] = {}
    callers_of: Dict[str, List[Tuple[str, int]]] = {}
    for (caller, callee), weight in sorted(edges.items()):
        incoming[callee] = incoming.get(callee, 0) + weight
        callers_of.setdefault(callee, []).append((caller, weight))

    # Hottest callees first; ties resolved by original link order.
    hot_callees = sorted(incoming,
                         key=lambda name: (-incoming[name], index[name]))
    for callee in hot_callees:
        # Hottest caller first (then original order for determinism).
        candidates = sorted(callers_of[callee],
                            key=lambda cw: (-cw[1], index[cw[0]]))
        src = cluster_of[callee]
        for caller, _weight in candidates:
            dst = cluster_of[caller]
            if dst == src:
                continue
            if sizes[dst] + sizes[src] > C3_CLUSTER_BUDGET_BYTES:
                continue
            for name in members[src]:
                cluster_of[name] = dst
            members[dst].extend(members[src])
            sizes[dst] += sizes[src]
            del members[src], sizes[src]
            break

    def cluster_weight(names: List[str]) -> int:
        return sum(incoming.get(name, 0) for name in names)

    emitted = sorted(
        members.items(),
        key=lambda item: (-cluster_weight(item[1]) / max(1, sizes[item[0]]),
                          min(index[name] for name in item[1])))
    order = [by_name[name] for _, names in emitted for name in names]
    return order, len(emitted)


def order_outlined_near_callers(
        functions: List[MachineFunction]) -> List[MachineFunction]:
    """Place each outlined function after its most frequent caller.

    Outlined functions called from everywhere (the popular retain/release
    thunks) still get one home; the win comes from the long tail of
    outlined functions with one or two callers, which land on the same
    page / cache lines as the code that calls them.
    """
    regular = [fn for fn in functions if not fn.is_outlined]
    outlined = [fn for fn in functions if fn.is_outlined]
    if not outlined:
        return functions
    # Caller census: outlined name -> {caller name: call sites}.
    callers: Dict[str, Dict[str, int]] = {fn.name: {} for fn in outlined}
    for fn in functions:
        for instr in fn.instructions():
            callee = instr.callee()
            if callee in callers:
                census = callers[callee]
                census[fn.name] = census.get(fn.name, 0) + 1
    placed_after: Dict[str, List[MachineFunction]] = {}
    orphans: List[MachineFunction] = []
    for fn in outlined:
        census = callers[fn.name]
        if not census:
            orphans.append(fn)
            continue
        best = max(sorted(census), key=lambda name: census[name])
        placed_after.setdefault(best, []).append(fn)
    out: List[MachineFunction] = []
    for fn in regular:
        out.append(fn)
        out.extend(placed_after.pop(fn.name, ()))
    # Callers that were themselves outlined: resolve iteratively.
    remaining = [fn for group in placed_after.values() for fn in group]
    progress = True
    while remaining and progress:
        progress = False
        placed_names = {fn.name: i for i, fn in enumerate(out)}
        still: List[MachineFunction] = []
        for fn in remaining:
            census = callers[fn.name]
            hosts = [n for n in census if n in placed_names]
            if hosts:
                host = max(sorted(hosts), key=lambda name: census[name])
                out.insert(placed_names[host] + 1, fn)
                progress = True
            else:
                still.append(fn)
        remaining = still
    out.extend(remaining)
    out.extend(orphans)
    return out
