"""Post-link binary verifier: prove an image is structurally sound.

Runs after every build and on every image-cache hit (the cache restores
pickles from disk — exactly the artifact a torn write, a bit flip, or a
bad pickler could have damaged).  The checks mirror what the paper's
pipeline learned the hard way (§VI): a size-reducing transform or a
pipeline change that *links* is not necessarily *correct*, so the final
image is validated once more before anyone executes or ships it.

Checks, in order:

1. **Text layout** — function extents start at ``text_base``, are sorted,
   non-overlapping, instruction-aligned, and cover the instruction stream
   exactly (a truncated ``instrs`` list or a phantom extent both fail).
2. **Symbol table consistency** — every function extent has a symbol at
   its start address; every symbol resolves into text, a runtime stub, or
   the data segment; the entry symbol (when set) is a real function.
3. **Branch/call targets in range** — every local branch lands inside its
   own function; every resolved call lands on a function start or a
   runtime stub; every direct call/tail call has a resolved target.
4. **Outlined call/return pairing** — outlined functions end in ``RET``
   or a tail call (control always returns to the caller), and nothing
   branches into the middle of an outlined body.
5. **Data layout monotonic** — the data segment sits above text, module
   extents are well-formed and inside the segment, and every initialised
   word lies inside the segment.

All violations raise :class:`~repro.errors.ImageVerifierError` — a
structurally wrong binary must never be returned to the caller.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.errors import ImageVerifierError
from repro.isa.instructions import Opcode, Sym
from repro.link.binary import BinaryImage
from repro.obs import trace
from repro.target import get_target
from repro.target.spec import TargetSpec


def verify_image(image: BinaryImage,
                 target: Union[str, TargetSpec, None] = None) -> None:
    """Raise :class:`ImageVerifierError` unless ``image`` is sound.

    The width/alignment model is taken from *target* when given, else from
    the image's recorded ``target_name``.
    """
    spec = get_target(target if target is not None else image.target_name)
    problems: List[str] = []
    with trace.span("verify-image", kind="verify",
                    num_functions=len(image.functions),
                    target=spec.name) as span:
        _check_text_layout(image, problems, spec)
        checks = 1
        if not problems:
            # Later checks index by extent; skip them if layout is broken.
            _check_symbols(image, problems)
            _check_targets(image, problems)
            _check_outlined(image, problems)
            _check_data(image, problems)
            checks = 5
        span.annotate(checks=checks, problems=len(problems))
        metrics = trace.metrics()
        metrics.set_gauge("verify.checks_run", checks)
        metrics.set_gauge("verify.problems", len(problems))
        metrics.set_gauge("verify.passed", int(not problems))
    if problems:
        preview = "; ".join(problems[:4])
        more = f" (+{len(problems) - 4} more)" if len(problems) > 4 else ""
        raise ImageVerifierError(
            f"binary image failed verification: {preview}{more}")


def _check_text_layout(image: BinaryImage, problems: List[str],
                       spec: TargetSpec) -> None:
    addr = image.text_base
    idx = 0
    num_instrs = len(image.instrs)
    for ext in image.functions:
        expected = spec.align_up(addr)
        if ext.start != expected:
            problems.append(
                f"function {ext.name!r} starts at {ext.start:#x}, "
                f"expected {expected:#x} (extents must be contiguous and "
                f"{spec.function_alignment}-byte aligned)")
            return
        if ext.start % spec.function_alignment:
            problems.append(
                f"function {ext.name!r} starts at unaligned address "
                f"{ext.start:#x} (alignment {spec.function_alignment})")
            return
        if ext.end <= ext.start:
            problems.append(
                f"function {ext.name!r} has a bad extent "
                f"[{ext.start:#x}, {ext.end:#x})")
            return
        # Walk the extent instruction by instruction under the target's
        # width model; the extent must cover its instructions exactly.
        fn_addr = ext.start
        while idx < num_instrs and fn_addr < ext.end:
            if image.addr_of_index(idx) != fn_addr:
                problems.append(
                    f"instruction {idx} of {ext.name!r} recorded at "
                    f"{image.addr_of_index(idx):#x}, expected {fn_addr:#x}")
                return
            fn_addr += spec.instr_bytes(image.instrs[idx])
            idx += 1
        if fn_addr != ext.end:
            problems.append(
                f"function {ext.name!r} extent [{ext.start:#x}, "
                f"{ext.end:#x}) does not match its encoded instruction "
                f"bytes (ends {fn_addr:#x}; truncated or rewritten text)")
            return
        addr = ext.end
    text_end = image.text_end_address()
    if addr != text_end:
        problems.append(
            f"text section holds {num_instrs} instructions "
            f"(ends {text_end:#x}) but extents end at {addr:#x} "
            f"(truncated or padded text)")
    if idx != num_instrs:
        problems.append(
            f"{num_instrs - idx} instructions lie beyond the last "
            f"function extent")


def _check_symbols(image: BinaryImage, problems: List[str]) -> None:
    starts = {ext.start for ext in image.functions}
    for ext in image.functions:
        if image.symbols.get(ext.name) != ext.start:
            problems.append(
                f"symbol table disagrees with extent of {ext.name!r}: "
                f"{image.symbols.get(ext.name)!r} != {ext.start:#x}")
    text_end = image.text_end_address()
    for name, addr in image.symbols.items():
        in_text = image.text_base <= addr < text_end
        in_data = image.data_base <= addr < max(image.data_end,
                                                image.data_base + 1)
        is_stub = addr in image.runtime_stubs
        if in_text and addr not in starts:
            problems.append(
                f"symbol {name!r} points inside a function body "
                f"({addr:#x})")
        elif not (in_text or in_data or is_stub):
            problems.append(
                f"symbol {name!r} points outside every segment ({addr:#x})")
    entry = image.entry_symbol
    if entry is not None and image.symbols.get(entry) not in starts:
        problems.append(f"entry symbol {entry!r} is not a function start")


def _check_targets(image: BinaryImage, problems: List[str]) -> None:
    starts = {ext.start for ext in image.functions}
    # _check_text_layout has already proven the extents sorted, contiguous
    # and exactly covering the instruction stream, so a single forward walk
    # replaces a per-instruction function_at() lookup.
    extents = iter(image.functions)
    ext = next(extents, None)
    for idx, instr in enumerate(image.instrs):
        addr = image.addr_of_index(idx)
        while ext is not None and addr >= ext.end:
            ext = next(extents, None)
        target = image.resolved_target.get(idx)
        if instr.branch_target() is not None:
            if target is None:
                problems.append(
                    f"branch at {addr:#x} ({instr.render()}) was never "
                    f"resolved")
            elif (ext is None or not ext.start <= target < ext.end
                    or not image.is_instr_addr(target)):
                problems.append(
                    f"branch at {addr:#x} targets {target:#x}, outside its "
                    f"function {ext.name if ext else '?'!r}")
        elif instr.opcode is Opcode.BL or instr.is_tail_call:
            if isinstance(instr.operands[0], Sym):
                if target is None:
                    problems.append(
                        f"call at {addr:#x} ({instr.render()}) was never "
                        f"resolved")
                elif target not in starts and target not in image.runtime_stubs:
                    problems.append(
                        f"call at {addr:#x} targets {target:#x}, which is "
                        f"neither a function start nor a runtime stub")
        sym_addr = image.resolved_sym.get(idx)
        if sym_addr is not None:
            in_data = image.data_base <= sym_addr < image.data_end
            if not (in_data or sym_addr in starts
                    or sym_addr in image.runtime_stubs):
                problems.append(
                    f"address materialisation at {addr:#x} resolves to "
                    f"{sym_addr:#x}, outside data and function starts")


def _check_outlined(image: BinaryImage, problems: List[str]) -> None:
    outlined = [ext for ext in image.functions if ext.is_outlined]
    if not outlined:
        return
    for ext in outlined:
        last = image.instrs[image.index_of_addr(ext.end) - 1]
        if not (last.is_return or last.is_tail_call):
            problems.append(
                f"outlined function {ext.name!r} falls through its end "
                f"(last instruction {last.render()!r}) — call/return "
                f"pairing is broken")
    # Nothing may branch into the middle of an outlined body: outlined
    # code is only entered via BL/tail call at its start (checked above),
    # and local branches stay within their own function (checked above),
    # so the remaining hazard is an outlined extent whose start has no
    # symbol — an unreachable orphan that bloats text silently.
    for ext in outlined:
        if image.symbols.get(ext.name) != ext.start:
            problems.append(
                f"outlined function {ext.name!r} has no symbol at its "
                f"start address")


def _check_data(image: BinaryImage, problems: List[str]) -> None:
    text_end = image.text_end_address()
    if image.data_end < image.data_base:
        problems.append(
            f"data segment is inverted: [{image.data_base:#x}, "
            f"{image.data_end:#x})")
        return
    if image.data_init and image.data_base < text_end:
        problems.append(
            f"data segment [{image.data_base:#x}, ...) overlaps text "
            f"(ends {text_end:#x})")
    for name, (lo, hi) in image.data_extent_of_module.items():
        if not (image.data_base <= lo <= hi <= image.data_end):
            problems.append(
                f"module {name!r} data extent [{lo:#x}, {hi:#x}) escapes "
                f"the data segment")
    for addr in image.data_init:
        if not image.data_base <= addr < image.data_end:
            problems.append(
                f"initialised data word at {addr:#x} lies outside "
                f"[{image.data_base:#x}, {image.data_end:#x})")
            break  # one example is enough; data_init can be large
