"""Zero-dependency observability: tracing, metrics, and exporters.

Usage from anywhere in the toolchain (no plumbing required)::

    from repro.obs import trace

    with trace.span("outline-round", round_no=n):
        ...
    trace.metrics().inc("outliner.bytes_saved", saved)

Both calls are no-ops (shared singletons, no allocation) unless a build
activated a real :class:`Tracer` via :func:`trace.use_tracer` — the CLI
does this for ``--trace-out`` / ``--metrics-out`` / ``--profile``, and
``experiments.common.traced_build`` does it for figure scripts.
"""

from repro.obs.export import (
    chrome_trace_dict,
    metrics_dict,
    profile_lines,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import (
    NULL_METRICS,
    HistogramSummary,
    MetricsRegistry,
    MetricsSnapshot,
    NullMetricsRegistry,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "HistogramSummary",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace_dict",
    "current_tracer",
    "metrics_dict",
    "profile_lines",
    "use_tracer",
    "write_chrome_trace",
    "write_metrics",
]
