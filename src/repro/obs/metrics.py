"""Counter / gauge / histogram metrics with a per-build registry.

Three instrument kinds, mirroring the usual metrics vocabulary:

* **Counter** — monotonically accumulated totals (``outliner.bytes_saved``,
  ``sim.instructions_retired``).  Negative increments are allowed so that
  net deltas (a pass that *grows* a module) stay honest.
* **Gauge** — last-write-wins point-in-time values (``cache.hits``,
  ``verify.passed``).
* **Histogram** — a stream of observations summarised as
  count/total/min/max/mean (``lir.pass.dce.instr_delta`` per run).

The registry is deliberately dependency-free and deterministic: iteration
and serialisation order is sorted by metric name, and nothing in the
payload carries a timestamp, so two runs of the same build dump identical
metrics JSON.  Forked workers accumulate into their own registry; the
snapshot travels back with the chunk result and is merged with
:meth:`MetricsRegistry.merge` (counters add, gauges last-write-wins in
merge order, histograms combine).

:data:`NULL_METRICS` is the write-discarding registry the no-op tracer
hands out when observability is off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class HistogramSummary:
    """Streaming summary of one histogram (no raw samples retained)."""

    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def combine(self, other: "HistogramSummary") -> None:
        if not other.count:
            return
        self.count += other.count
        self.total += other.total
        self.min = other.min if self.min is None else min(self.min, other.min)
        self.max = other.max if self.max is None else max(self.max, other.max)

    def as_dict(self) -> Dict[str, float]:
        return {"count": self.count, "total": self.total,
                "min": self.min if self.min is not None else 0,
                "max": self.max if self.max is not None else 0,
                "mean": self.mean}


@dataclass
class MetricsSnapshot:
    """Plain, picklable registry contents (crosses the worker pipe)."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramSummary] = field(default_factory=dict)


class MetricsRegistry:
    """Name -> instrument map; one per build (attached to the tracer)."""

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramSummary] = {}

    # -- instruments -------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = HistogramSummary()
        hist.observe(value)

    # -- aggregation -------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            histograms={name: HistogramSummary(count=h.count, total=h.total,
                                               min=h.min, max=h.max)
                        for name, h in self.histograms.items()})

    def merge(self, snap: MetricsSnapshot) -> None:
        """Fold a worker snapshot in (counters add, gauges overwrite,
        histograms combine).  Call in chunk order for determinism."""
        for name, value in snap.counters.items():
            self.inc(name, value)
        for name, value in snap.gauges.items():
            self.set_gauge(name, value)
        for name, hist in snap.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = HistogramSummary()
            mine.combine(hist)

    # -- serialisation -----------------------------------------------------

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Deterministic (name-sorted) plain-dict dump."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {k: self.histograms[k].as_dict()
                           for k in sorted(self.histograms)},
        }


class NullMetricsRegistry(MetricsRegistry):
    """Discards every write; handed out when observability is off."""

    enabled = False

    def inc(self, name: str, value: float = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


NULL_METRICS = NullMetricsRegistry()
