"""Exporters: Chrome ``trace_event`` JSON, flat metrics JSON, CLI table.

The trace file loads directly in ``chrome://tracing`` and in Perfetto
(https://ui.perfetto.dev -> "Open trace file"): spans become complete
("X") events, degradation annotations become instant ("i") events, and
each forked worker chunk gets its own named track so the fan-out of the
parallel frontend/backend is visible as stacked lanes.

Event *content and ordering* are deterministic for a given build (spans
are emitted in recorded order, metrics sorted by name); only the ``ts``
and ``dur`` fields vary run to run, which is what
``Span.structure()``-based tests compare around.
"""

from __future__ import annotations

import json
from typing import Dict, List, Union

from repro.obs.trace import NullTracer, Span, Tracer

_PID = 1  # one build = one logical process in the trace


def _microseconds(seconds: float, epoch: float) -> float:
    return round((seconds - epoch) * 1e6, 3)


def chrome_trace_events(tracer: Tracer) -> List[dict]:
    """Flatten the span forest into Chrome trace_event dicts."""
    events: List[dict] = []
    tracks = {0}
    epoch = getattr(tracer, "epoch", 0.0)
    for span in tracer.all_spans():
        tracks.add(span.track)
        event = {
            "name": span.name,
            "cat": str(span.attrs.get("kind", "build")),
            "ph": "i" if span.instant else "X",
            "ts": _microseconds(span.start, epoch),
            "pid": _PID,
            "tid": span.track,
            "args": dict(span.attrs),
        }
        if span.instant:
            event["s"] = "t"  # instant scope: thread
        else:
            event["dur"] = round(span.duration * 1e6, 3)
        events.append(event)
    # Name the tracks so Perfetto shows "build" / "worker chunk N" lanes.
    for track in sorted(tracks):
        name = "build" if track == 0 else f"worker chunk {track - 1}"
        events.append({"name": "thread_name", "ph": "M", "pid": _PID,
                       "tid": track, "args": {"name": name}})
    return events


def chrome_trace_dict(tracer: Tracer) -> dict:
    return {"traceEvents": chrome_trace_events(tracer),
            "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace_dict(tracer), fh, indent=1)
        fh.write("\n")


# -- metrics -----------------------------------------------------------------


def metrics_dict(tracer: Union[Tracer, NullTracer]) -> Dict[str, object]:
    return tracer.metrics.as_dict()


def write_metrics(tracer: Union[Tracer, NullTracer], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(metrics_dict(tracer), fh, indent=1, sort_keys=True)
        fh.write("\n")


# -- human summary (CLI --profile) -------------------------------------------


def _aggregate(spans: List[Span], totals: Dict[str, List[float]],
               depth: int = 0) -> None:
    for span in spans:
        if not span.instant:
            entry = totals.setdefault(span.name, [0.0, 0])
            entry[0] += span.duration
            entry[1] += 1
        _aggregate(span.children, totals, depth + 1)


def profile_lines(tracer: Union[Tracer, NullTracer],
                  top: int = 20) -> List[str]:
    """Flat self-explanatory profile: span totals, then headline metrics."""
    totals: Dict[str, List[float]] = {}
    _aggregate(list(tracer.roots), totals)
    lines = ["profile (span totals, all occurrences summed):"]
    if not totals:
        lines.append("  (no spans recorded)")
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1][0], kv[0]))[:top]
    width = max((len(name) for name, _ in ranked), default=0)
    for name, (secs, count) in ranked:
        lines.append(f"  {name.ljust(width)}  {secs * 1000:9.2f}ms"
                     f"  x{count}")
    metrics = tracer.metrics.as_dict()
    shown = []
    for kind in ("counters", "gauges"):
        for name, value in metrics[kind].items():  # already name-sorted
            shown.append((name, value))
    if shown:
        lines.append("metrics:")
        width = max(len(name) for name, _ in shown)
        for name, value in shown:
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name.ljust(width)}  {rendered}")
    return lines
