"""Nested-span tracer: the pipeline's single source of timing truth.

Design constraints (DESIGN.md §8):

* **One clock.**  Every duration anywhere in the toolchain — a
  :class:`~repro.pipeline.report.BuildReport` phase, an LIR pass, an
  outlining round, a forked worker chunk — is measured with :func:`now`
  (``time.perf_counter``, i.e. ``CLOCK_MONOTONIC``).  Forked children
  share the parent's clock base on every platform with ``fork``, so
  worker spans land on the parent timeline without translation.

* **Off by default, near-zero overhead.**  The ambient tracer is a
  :class:`NullTracer` singleton whose ``span`` returns one reusable
  no-op context manager and whose metrics registry discards writes; an
  untraced build does no allocation and takes no locks on any hot path.
  Builds must be bit-identical with tracing on and off (enforced by
  ``tests/unit/test_trace_overhead.py``).

* **Deterministic content.**  Span names, attributes, nesting, and
  ordering are a pure function of the build; only ``start``/``end``
  vary run to run.  :meth:`Span.structure` is the comparison surface —
  it excludes timestamps by construction.

* **Process-safe aggregation.**  A forked worker records into its own
  :class:`Tracer`; the finished spans (plain picklable dataclasses)
  travel back with the chunk result and are grafted onto the parent via
  :meth:`Tracer.adopt`, in chunk order, so two runs of the same build
  produce the same tree no matter how the pool scheduled them.

The ambient tracer travels in a :class:`contextvars.ContextVar`, so
concurrent builds in different threads cannot observe each other.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry, NULL_METRICS

AttrValue = Union[str, int, float, bool]


def now() -> float:
    """The pipeline-wide monotonic clock (seconds, arbitrary epoch)."""
    return time.perf_counter()


@dataclass
class Span:
    """One timed region.  Picklable: crosses the worker result pipe."""

    name: str
    start: float
    end: float = 0.0
    attrs: Dict[str, AttrValue] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    #: Display track: 0 = orchestrating process, N>0 = worker chunk N-1.
    track: int = 0
    #: Zero-duration marker (degradation events, annotations).
    instant: bool = False

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def annotate(self, **attrs: AttrValue) -> "Span":
        self.attrs.update(attrs)
        return self

    def structure(self) -> Tuple:
        """Timestamp-free shape: the deterministic comparison surface."""
        return (self.name, tuple(sorted(self.attrs.items())), self.instant,
                tuple(child.structure() for child in self.children))

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()


class _NullSpan:
    """Shared no-op stand-in for a Span when tracing is off."""

    __slots__ = ()
    name = ""
    duration = 0.0

    def annotate(self, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a forest of nested spans plus a metrics registry."""

    enabled = True

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self.epoch = now()

    # -- span lifecycle ----------------------------------------------------

    def start_span(self, name: str, **attrs: AttrValue) -> Span:
        span = Span(name=name, start=now(), attrs=dict(attrs))
        (self._stack[-1].children if self._stack else self.roots).append(span)
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        span.end = now()
        # Tolerate mismatched nesting from exception unwinding: pop through.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    @contextmanager
    def span(self, name: str, **attrs: AttrValue) -> Iterator[Span]:
        sp = self.start_span(name, **attrs)
        try:
            yield sp
        finally:
            self.end_span(sp)

    def event(self, name: str, **attrs: AttrValue) -> Span:
        """Record an instant (zero-duration) marker at the current nesting."""
        ts = now()
        span = Span(name=name, start=ts, end=ts, attrs=dict(attrs),
                    instant=True)
        (self._stack[-1].children if self._stack else self.roots).append(span)
        return span

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # -- cross-process aggregation ----------------------------------------

    def adopt(self, spans: List[Span], track: int = 0) -> None:
        """Graft finished spans (from a forked worker) at the current
        nesting level, relabelling their display track."""
        for span in spans:
            for node in span.walk():
                node.track = track
        target = self._stack[-1].children if self._stack else self.roots
        target.extend(spans)

    # -- views -------------------------------------------------------------

    def all_spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    def structure(self) -> Tuple:
        """Timestamp-free shape of the whole trace."""
        return tuple(root.structure() for root in self.roots)


class NullTracer:
    """The default tracer: every operation is a no-op."""

    enabled = False
    roots: List[Span] = []
    metrics = NULL_METRICS

    def start_span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def end_span(self, span) -> None:
        pass

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    current = None

    def adopt(self, spans, track: int = 0) -> None:
        pass

    def all_spans(self):
        return iter(())

    def structure(self) -> Tuple:
        return ()


NULL_TRACER = NullTracer()

_CURRENT: ContextVar[Union[Tracer, NullTracer]] = ContextVar(
    "repro_obs_tracer", default=NULL_TRACER)


def current_tracer() -> Union[Tracer, NullTracer]:
    """The ambient tracer (a shared no-op unless a build activated one)."""
    return _CURRENT.get()


@contextmanager
def use_tracer(tracer: Union[Tracer, NullTracer]) -> Iterator[
        Union[Tracer, NullTracer]]:
    """Make ``tracer`` ambient for the dynamic extent of the block."""
    token = _CURRENT.set(tracer)
    try:
        yield tracer
    finally:
        _CURRENT.reset(token)


def span(name: str, **attrs: AttrValue):
    """Open a span on the ambient tracer (no-op context manager when off)."""
    return current_tracer().span(name, **attrs)


def event(name: str, **attrs: AttrValue):
    """Record an instant marker on the ambient tracer."""
    return current_tracer().event(name, **attrs)


def metrics() -> MetricsRegistry:
    """The ambient metrics registry (a write-discarding one when off)."""
    return current_tracer().metrics
