"""Heap, refcounting, and type layouts for the simulated Swift runtime.

The heap operates directly on the interpreter's flat memory (a word-address
-> value mapping).  Freed objects have their words *deleted*, so any
use-after-free in generated code faults loudly in tests.  The leak check
(`live_objects` empty at exit) is what validates SILGen's ARC insertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Union

from repro.errors import RuntimeTrap
from repro.runtime import layout


@dataclass
class ClassLayout:
    type_id: int
    name: str
    num_fields: int
    ref_field_indices: List[int]


class TypeRegistry:
    """Maps runtime type ids to class layouts (for deinit recursion)."""

    def __init__(self) -> None:
        self._classes: Dict[int, ClassLayout] = {}

    def register(self, layout_info: ClassLayout) -> None:
        self._classes[layout_info.type_id] = layout_info

    def class_layout(self, type_id: int) -> ClassLayout:
        if type_id not in self._classes:
            raise RuntimeTrap(f"unknown class type id {type_id}")
        return self._classes[type_id]

    @classmethod
    def from_program(cls, program) -> "TypeRegistry":
        """Build from a sema :class:`ProgramInfo`."""
        registry = cls()
        for info in program.classes_by_qualified_name.values():
            decl = info.decl
            refs = [f.index for f in decl.fields if f.ty.is_ref()]
            registry.register(ClassLayout(type_id=decl.type_id,
                                          name=decl.qualified_name,
                                          num_fields=len(decl.fields),
                                          ref_field_indices=refs))
        return registry


@dataclass
class HeapStats:
    allocations: int = 0
    frees: int = 0
    retains: int = 0
    releases: int = 0
    peak_live: int = 0


class Heap:
    """Bump allocator + refcount machinery over the CPU memory."""

    def __init__(self, memory: Dict[int, Union[int, float]], base: int,
                 registry: Optional[TypeRegistry] = None):
        self.memory = memory
        self.next_addr = base
        self.base = base
        self.registry = registry or TypeRegistry()
        self.live_objects: Dict[int, int] = {}
        self.live_buffers: Dict[int, int] = {}
        self.stats = HeapStats()

    # -- raw allocation -----------------------------------------------------

    def _alloc_raw(self, size: int) -> int:
        size = (size + 15) & ~15
        addr = self.next_addr
        self.next_addr += size
        return addr

    def alloc_buffer(self, count: int) -> int:
        addr = self._alloc_raw(8 * max(1, count))
        self.live_buffers[addr] = 8 * max(1, count)
        for i in range(count):
            self.memory[addr + 8 * i] = 0
        return addr

    def free_buffer(self, addr: int) -> None:
        size = self.live_buffers.pop(addr, None)
        if size is None:
            raise RuntimeTrap(f"double free of buffer 0x{addr:x}")
        for off in range(0, size, 8):
            self.memory.pop(addr + off, None)

    def _alloc_object(self, size: int) -> int:
        addr = self._alloc_raw(size)
        self.live_objects[addr] = size
        self.stats.allocations += 1
        self.stats.peak_live = max(self.stats.peak_live,
                                   len(self.live_objects))
        for off in range(0, size, 8):
            self.memory[addr + off] = 0
        return addr

    def _free_object(self, addr: int) -> None:
        size = self.live_objects.pop(addr, None)
        if size is None:
            raise RuntimeTrap(f"double free of object 0x{addr:x}")
        for off in range(0, size, 8):
            self.memory.pop(addr + off, None)
        self.stats.frees += 1

    # -- typed allocation ----------------------------------------------------

    def alloc_class(self, type_id: int, size: int) -> int:
        addr = self._alloc_object(size)
        self.memory[addr + layout.HEADER_TYPEID] = layout.pack_typeid(type_id)
        self.memory[addr + layout.HEADER_RC] = 1
        return addr

    def alloc_array(self, count: int, initial: Union[int, float],
                    kind: int) -> int:
        if count < 0:
            raise RuntimeTrap(f"negative array count {count}")
        addr = self._alloc_object(layout.ARRAY_OBJECT_BYTES)
        buf = self.alloc_buffer(count)
        mem = self.memory
        mem[addr + layout.HEADER_TYPEID] = layout.pack_typeid(
            layout.TYPE_ID_ARRAY, kind)
        mem[addr + layout.HEADER_RC] = 1
        mem[addr + layout.ARRAY_COUNT] = count
        mem[addr + layout.ARRAY_CAPACITY] = max(1, count)
        mem[addr + layout.ARRAY_BUF] = buf
        for i in range(count):
            mem[buf + 8 * i] = initial
        if kind == layout.ELEM_REF and initial:
            # The array holds `count` new references to the initial object.
            for _ in range(count):
                self.retain(int(initial))
        return addr

    def alloc_string(self, text: str) -> int:
        addr = self._alloc_object(layout.STRING_OBJECT_BYTES)
        buf = self.alloc_buffer(len(text))
        mem = self.memory
        mem[addr + layout.HEADER_TYPEID] = layout.pack_typeid(
            layout.TYPE_ID_STRING)
        mem[addr + layout.HEADER_RC] = 1
        mem[addr + layout.STRING_COUNT] = len(text)
        mem[addr + layout.STRING_BUF] = buf
        for i, ch in enumerate(text):
            mem[buf + 8 * i] = ord(ch)
        return addr

    def alloc_box(self, kind: int) -> int:
        addr = self._alloc_object(layout.BOX_OBJECT_BYTES)
        mem = self.memory
        mem[addr + layout.HEADER_TYPEID] = layout.pack_typeid(
            layout.TYPE_ID_BOX, kind)
        mem[addr + layout.HEADER_RC] = 1
        mem[addr + layout.BOX_CONTENT] = 0.0 if kind == layout.ELEM_FLOAT else 0
        return addr

    def alloc_closure(self, fnptr: int, ncaptures: int) -> int:
        size = layout.CLOSURE_CAPS_OFFSET + 8 * ncaptures
        addr = self._alloc_object(size)
        mem = self.memory
        mem[addr + layout.HEADER_TYPEID] = layout.pack_typeid(
            layout.TYPE_ID_CLOSURE)
        mem[addr + layout.HEADER_RC] = 1
        mem[addr + layout.CLOSURE_FN] = fnptr
        mem[addr + layout.CLOSURE_NCAPS] = ncaptures
        return addr

    # -- refcounting -------------------------------------------------------------

    def retain(self, addr: int) -> None:
        self.stats.retains += 1
        if addr == 0:
            return
        rc_addr = addr + layout.HEADER_RC
        rc = self.memory.get(rc_addr)
        if rc is None:
            raise RuntimeTrap(f"retain of non-object 0x{addr:x}")
        if rc == layout.IMMORTAL_RC:
            return
        if rc <= 0:
            raise RuntimeTrap(f"retain of dead object 0x{addr:x} (rc={rc})")
        self.memory[rc_addr] = rc + 1

    def release(self, addr: int) -> None:
        self.stats.releases += 1
        if addr == 0:
            return
        worklist = [addr]
        while worklist:
            obj = worklist.pop()
            if obj == 0:
                continue
            rc_addr = obj + layout.HEADER_RC
            rc = self.memory.get(rc_addr)
            if rc is None:
                raise RuntimeTrap(f"release of non-object 0x{obj:x}")
            if rc == layout.IMMORTAL_RC:
                continue
            if rc <= 0:
                raise RuntimeTrap(
                    f"over-release of object 0x{obj:x} (rc={rc})")
            if rc > 1:
                self.memory[rc_addr] = rc - 1
                continue
            worklist.extend(self._destroy(obj))

    def _destroy(self, obj: int) -> List[int]:
        """Free *obj*; returns child references to release."""
        mem = self.memory
        word = int(mem[obj + layout.HEADER_TYPEID])
        type_id = layout.unpack_typeid(word)
        kind = layout.unpack_kind(word)
        children: List[int] = []
        if type_id == layout.TYPE_ID_ARRAY:
            count = int(mem[obj + layout.ARRAY_COUNT])
            buf = int(mem[obj + layout.ARRAY_BUF])
            if kind == layout.ELEM_REF:
                children.extend(
                    int(mem[buf + 8 * i]) for i in range(count))
            self.free_buffer(buf)
        elif type_id == layout.TYPE_ID_STRING:
            self.free_buffer(int(mem[obj + layout.STRING_BUF]))
        elif type_id == layout.TYPE_ID_BOX:
            if kind == layout.ELEM_REF:
                children.append(int(mem[obj + layout.BOX_CONTENT]))
        elif type_id == layout.TYPE_ID_CLOSURE:
            ncaps = int(mem[obj + layout.CLOSURE_NCAPS])
            children.extend(
                int(mem[obj + layout.closure_capture_offset(i)])
                for i in range(ncaps))
        else:
            cls = self.registry.class_layout(type_id)
            children.extend(
                int(mem[obj + layout.class_field_offset(i)])
                for i in cls.ref_field_indices)
        self._free_object(obj)
        return [child for child in children if child]

    def dealloc_partial(self, addr: int) -> None:
        """Free a partially initialised object without touching children."""
        rc = self.memory.get(addr + layout.HEADER_RC)
        if rc is None:
            raise RuntimeTrap(f"dealloc_partial of non-object 0x{addr:x}")
        if rc != 1:
            raise RuntimeTrap(
                f"dealloc_partial of object 0x{addr:x} with rc={rc}")
        self._free_object(addr)

    # -- array operations ---------------------------------------------------------

    def array_append(self, arr: int, value: Union[int, float]) -> None:
        mem = self.memory
        count = int(mem[arr + layout.ARRAY_COUNT])
        cap = int(mem[arr + layout.ARRAY_CAPACITY])
        buf = int(mem[arr + layout.ARRAY_BUF])
        if count == cap:
            new_cap = max(4, cap * 2)
            new_buf = self.alloc_buffer(new_cap)
            for i in range(count):
                mem[new_buf + 8 * i] = mem[buf + 8 * i]
            self.free_buffer(buf)
            mem[arr + layout.ARRAY_BUF] = new_buf
            mem[arr + layout.ARRAY_CAPACITY] = new_cap
            buf = new_buf
        mem[buf + 8 * count] = value
        mem[arr + layout.ARRAY_COUNT] = count + 1

    def array_remove_last(self, arr: int) -> Union[int, float]:
        mem = self.memory
        count = int(mem[arr + layout.ARRAY_COUNT])
        if count == 0:
            raise RuntimeTrap("removeLast on empty array")
        buf = int(mem[arr + layout.ARRAY_BUF])
        value = mem[buf + 8 * (count - 1)]
        mem[arr + layout.ARRAY_COUNT] = count - 1
        return value

    # -- strings --------------------------------------------------------------------

    def read_string(self, addr: int) -> str:
        mem = self.memory
        count = int(mem[addr + layout.STRING_COUNT])
        buf = int(mem[addr + layout.STRING_BUF])
        return "".join(chr(int(mem[buf + 8 * i])) for i in range(count))

    def box_set_ref(self, box: int, value: int) -> None:
        """Store a +1 reference into a box, releasing the displaced one."""
        old = int(self.memory[box + layout.BOX_CONTENT])
        self.memory[box + layout.BOX_CONTENT] = value
        if old:
            self.release(old)
        elif old == 0:
            # Releasing nil is a no-op but still counted by callers; the
            # box-set path performs the release itself, so account nothing.
            pass

    # -- diagnostics ------------------------------------------------------------------

    def leaked_objects(self) -> List[int]:
        return sorted(self.live_objects)
