"""Native implementations of the runtime functions.

Each handler reads the AAPCS64 argument registers off the CPU, performs the
operation against the heap, and writes the result register.  The table also
carries a cycle cost used by the timing model (runtime functions execute
"off to the side" like the real runtime's hand-tuned assembly).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

from repro.errors import RuntimeTrap
from repro.runtime import names


def _fmt_double(value: float) -> str:
    """Swift-style double printing ("2.0", "0.5", "1e-09"-free for common)."""
    if value != value:  # NaN
        return "nan"
    if value in (float("inf"), float("-inf")):
        return "inf" if value > 0 else "-inf"
    if value == int(value) and abs(value) < 1e16:
        return f"{int(value)}.0"
    return repr(value)


def _h_retain(cpu):
    cpu.heap.retain(int(cpu.regs["x0"]))


def _h_release(cpu):
    cpu.heap.release(int(cpu.regs["x0"]))


def _h_alloc_object(cpu):
    type_id = int(cpu.regs["x0"])
    size = int(cpu.regs["x1"])
    cpu.regs["x0"] = cpu.heap.alloc_class(type_id, size)


def _h_alloc_array(cpu):
    # Convention: x0=count, x1=kind, initial in d0 (float) or x2.
    count = int(cpu.regs["x0"])
    kind = int(cpu.regs["x1"])
    initial = float(cpu.regs["d0"]) if kind == 2 else int(cpu.regs["x2"])
    cpu.regs["x0"] = cpu.heap.alloc_array(count, initial, kind)


def _h_array_append(cpu):
    arr = int(cpu.regs["x0"])
    from repro.runtime import layout

    word = int(cpu.memory[arr + layout.HEADER_TYPEID])
    kind = layout.unpack_kind(word)
    # Float payloads arrive in d0 (first float arg), others in x1.
    value = (float(cpu.regs["d0"]) if kind == layout.ELEM_FLOAT
             else int(cpu.regs["x1"]))
    cpu.heap.array_append(arr, value)


def _h_array_remove_last(cpu):
    arr = int(cpu.regs["x0"])
    from repro.runtime import layout

    word = int(cpu.memory[arr + layout.HEADER_TYPEID])
    kind = layout.unpack_kind(word)
    value = cpu.heap.array_remove_last(arr)
    if kind == layout.ELEM_FLOAT:
        cpu.regs["d0"] = float(value)
    else:
        cpu.regs["x0"] = int(value)


def _h_alloc_box(cpu):
    cpu.regs["x0"] = cpu.heap.alloc_box(int(cpu.regs["x0"]))


def _h_box_set_ref(cpu):
    cpu.heap.box_set_ref(int(cpu.regs["x0"]), int(cpu.regs["x1"]))


def _h_alloc_closure(cpu):
    cpu.regs["x0"] = cpu.heap.alloc_closure(int(cpu.regs["x0"]),
                                            int(cpu.regs["x1"]))


def _h_dealloc_partial(cpu):
    cpu.heap.dealloc_partial(int(cpu.regs["x0"]))


def _h_string_concat(cpu):
    a = cpu.heap.read_string(int(cpu.regs["x0"]))
    b = cpu.heap.read_string(int(cpu.regs["x1"]))
    cpu.regs["x0"] = cpu.heap.alloc_string(a + b)


def _h_string_eq(cpu):
    a = cpu.heap.read_string(int(cpu.regs["x0"]))
    b = cpu.heap.read_string(int(cpu.regs["x1"]))
    cpu.regs["x0"] = 1 if a == b else 0


def _h_print_int(cpu):
    cpu.output.append(str(int(cpu.regs["x0"])))


def _h_print_double(cpu):
    cpu.output.append(_fmt_double(float(cpu.regs["d0"])))


def _h_print_bool(cpu):
    cpu.output.append("true" if cpu.regs["x0"] else "false")


def _h_print_string(cpu):
    cpu.output.append(cpu.heap.read_string(int(cpu.regs["x0"])))


def _h_abs(cpu):
    cpu.regs["x0"] = abs(int(cpu.regs["x0"]))


def _unary_math(fn: Callable[[float], float]):
    def handler(cpu):
        try:
            cpu.regs["d0"] = fn(float(cpu.regs["d0"]))
        except ValueError as exc:
            raise RuntimeTrap(f"math domain error: {exc}") from exc
    return handler


def _h_pow(cpu):
    cpu.regs["d0"] = float(cpu.regs["d0"]) ** float(cpu.regs["d1"])


def _h_random(cpu):
    # Deterministic 31-bit LCG (numerical recipes constants).
    state = cpu.runtime_state.get("rng", 0x2545F491)
    state = (state * 1664525 + 1013904223) & 0xFFFFFFFF
    cpu.runtime_state["rng"] = state
    cpu.regs["x0"] = state >> 1


def _h_seed_random(cpu):
    cpu.runtime_state["rng"] = int(cpu.regs["x0"]) & 0xFFFFFFFF


def _h_stack_chk_fail(cpu):
    raise RuntimeTrap("stack smashing detected")


#: name -> (handler, cycle cost charged by the timing model)
HANDLERS: Dict[str, Tuple[Callable, int]] = {
    names.SWIFT_RETAIN: (_h_retain, 8),
    names.SWIFT_RELEASE: (_h_release, 10),
    names.SWIFT_ALLOC_OBJECT: (_h_alloc_object, 40),
    names.SWIFT_ALLOC_ARRAY: (_h_alloc_array, 60),
    names.SWIFT_ARRAY_APPEND: (_h_array_append, 14),
    names.SWIFT_ARRAY_REMOVE_LAST: (_h_array_remove_last, 10),
    names.SWIFT_ALLOC_BOX: (_h_alloc_box, 40),
    names.SWIFT_BOX_SET_REF: (_h_box_set_ref, 12),
    names.SWIFT_ALLOC_CLOSURE: (_h_alloc_closure, 40),
    names.SWIFT_DEALLOC_PARTIAL: (_h_dealloc_partial, 20),
    names.SWIFT_STRING_CONCAT: (_h_string_concat, 60),
    names.SWIFT_STRING_EQ: (_h_string_eq, 30),
    names.OBJC_RETAIN: (_h_retain, 8),
    names.OBJC_RELEASE: (_h_release, 10),
    names.OBJC_ALLOC: (_h_alloc_object, 40),
    names.PRINT_INT: (_h_print_int, 200),
    names.PRINT_DOUBLE: (_h_print_double, 200),
    names.PRINT_BOOL: (_h_print_bool, 200),
    names.PRINT_STRING: (_h_print_string, 200),
    names.MATH_FUNCS["sqrt"]: (_unary_math(math.sqrt), 12),
    names.MATH_FUNCS["exp"]: (_unary_math(math.exp), 20),
    names.MATH_FUNCS["log"]: (_unary_math(math.log), 20),
    names.MATH_FUNCS["pow"]: (_h_pow, 30),
    names.MATH_FUNCS["sin"]: (_unary_math(math.sin), 20),
    names.MATH_FUNCS["cos"]: (_unary_math(math.cos), 20),
    names.MATH_FUNCS["floor"]: (_unary_math(math.floor), 6),
    names.MATH_FUNCS["abs"]: (_h_abs, 2),
    names.MATH_FUNCS["random"]: (_h_random, 15),
    names.MATH_FUNCS["seedRandom"]: (_h_seed_random, 4),
    names.STACK_CHK_FAIL: (_h_stack_chk_fail, 1),
    names.OBJC_MSGSEND: (lambda cpu: None, 20),  # dispatch cost only
}
