"""Runtime function symbols.

These are the "language and runtime features related to reference counting
and memory allocation" whose call sites dominate the paper's repeated
patterns (Listings 1-6).  The interpreter implements each natively; the
pattern-analysis reports show them by these names.
"""

from __future__ import annotations

SWIFT_RETAIN = "swift_retain"
SWIFT_RELEASE = "swift_release"
SWIFT_ALLOC_OBJECT = "swift_allocObject"
SWIFT_ALLOC_ARRAY = "swift_allocArray"
SWIFT_ARRAY_APPEND = "swift_arrayAppend"
SWIFT_ARRAY_REMOVE_LAST = "swift_arrayRemoveLast"
SWIFT_ALLOC_BOX = "swift_allocBox"
SWIFT_BOX_SET_REF = "swift_boxSetRef"
SWIFT_ALLOC_CLOSURE = "swift_allocClosure"
SWIFT_DEALLOC_PARTIAL = "swift_deallocPartial"
SWIFT_STRING_CONCAT = "swift_stringConcat"
SWIFT_STRING_EQ = "swift_stringEq"

OBJC_RETAIN = "objc_retain"
OBJC_RELEASE = "objc_release"
OBJC_MSGSEND = "objc_msgSend"
OBJC_ALLOC = "objc_alloc"

PRINT_INT = "print_int"
PRINT_DOUBLE = "print_double"
PRINT_BOOL = "print_bool"
PRINT_STRING = "print_string"

MATH_FUNCS = {
    "sqrt": "swift_sqrt",
    "exp": "swift_exp",
    "log": "swift_log",
    "pow": "swift_pow",
    "sin": "swift_sin",
    "cos": "swift_cos",
    "floor": "swift_floor",
    "abs": "swift_abs",
    "random": "swift_random",
    "seedRandom": "swift_seedRandom",
}

#: Runtime entry points used by kernel-style corpora (§VII-E-2).
STACK_CHK_FAIL = "__stack_chk_fail"

ALL_RUNTIME_SYMBOLS = frozenset(
    [
        SWIFT_RETAIN, SWIFT_RELEASE, SWIFT_ALLOC_OBJECT, SWIFT_ALLOC_ARRAY,
        SWIFT_ARRAY_APPEND, SWIFT_ARRAY_REMOVE_LAST, SWIFT_ALLOC_BOX,
        SWIFT_BOX_SET_REF, SWIFT_ALLOC_CLOSURE, SWIFT_DEALLOC_PARTIAL,
        SWIFT_STRING_CONCAT, SWIFT_STRING_EQ,
        OBJC_RETAIN, OBJC_RELEASE, OBJC_MSGSEND, OBJC_ALLOC,
        PRINT_INT, PRINT_DOUBLE, PRINT_BOOL, PRINT_STRING,
        STACK_CHK_FAIL,
    ]
    + list(MATH_FUNCS.values())
)
