"""Simulated Swift runtime: heap, refcounting, native functions, layouts."""

from repro.runtime.objects import ClassLayout, Heap, TypeRegistry

__all__ = ["ClassLayout", "Heap", "TypeRegistry"]
