"""Heap object layouts shared by IRGen, the linker, and the runtime.

Every heap object starts with a two-word header (type id, refcount), like a
Swift object's metadata pointer + refcount word.  All payload cells are
8-byte words; offsets below are in bytes.
"""

from __future__ import annotations

# Common header
HEADER_TYPEID = 0
HEADER_RC = 8
HEADER_BYTES = 16

# Class instances: fields follow the header.
OBJ_FIELDS_OFFSET = 16

# Arrays: [typeid, rc, count, capacity, bufptr]; the payload buffer is a
# separate allocation so append can grow without moving the array object.
ARRAY_COUNT = 16
ARRAY_CAPACITY = 24
ARRAY_BUF = 32
ARRAY_OBJECT_BYTES = 40

# Strings: [typeid, rc, count, bufptr]; one character code per word.
STRING_COUNT = 16
STRING_BUF = 24
STRING_OBJECT_BYTES = 32

# Boxes (closure captures): [typeid|kind<<8, rc, content].
BOX_CONTENT = 16
BOX_OBJECT_BYTES = 24

# Closures: [typeid, rc, fnptr, ncaptures, capture0, capture1, ...].
CLOSURE_FN = 16
CLOSURE_NCAPS = 24
CLOSURE_CAPS_OFFSET = 32

#: Element kinds for arrays and boxes (packed as ``typeid | kind << 8``).
ELEM_PLAIN = 0
ELEM_REF = 1
ELEM_FLOAT = 2


def pack_typeid(type_id: int, kind: int = ELEM_PLAIN) -> int:
    return type_id | (kind << 8)


def unpack_typeid(word: int) -> int:
    return word & 0xFF


def unpack_kind(word: int) -> int:
    return (word >> 8) & 0xFF

#: Sentinel refcount for statically allocated (immortal) objects.
IMMORTAL_RC = -1

#: Reserved type ids (classes start at 16; see frontend.sema).
TYPE_ID_ARRAY = 1
TYPE_ID_STRING = 2
TYPE_ID_CLOSURE = 3
TYPE_ID_BOX = 4


def class_field_offset(index: int) -> int:
    """Byte offset of stored field *index* in a class instance."""
    return OBJ_FIELDS_OFFSET + 8 * index


def closure_capture_offset(index: int) -> int:
    """Byte offset of capture *index* in a closure object."""
    return CLOSURE_CAPS_OFFSET + 8 * index


def object_size_for_fields(num_fields: int) -> int:
    return HEADER_BYTES + 8 * num_fields
