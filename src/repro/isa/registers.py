"""Register model for the AArch64-like target.

The target mirrors the subset of AArch64 that matters for the paper's
experiments:

* 31 general-purpose 64-bit registers ``x0`` .. ``x30`` plus the dedicated
  stack pointer ``sp`` and the always-zero register ``xzr``;
* 32 floating-point 64-bit registers ``d0`` .. ``d31``;
* ``x29`` is the frame pointer (``fp``) and ``x30`` the link register
  (``lr``), exactly as in the AAPCS64 calling convention the paper's
  Listings 1-8 rely on.

Registers are plain interned strings; virtual registers used before
register allocation are spelled ``v<N>`` (integer class) and ``fv<N>``
(floating-point class).
"""

from __future__ import annotations

from enum import Enum
from typing import Tuple

# --- Physical registers -----------------------------------------------------

GPRS: Tuple[str, ...] = tuple(f"x{i}" for i in range(31))
FPRS: Tuple[str, ...] = tuple(f"d{i}" for i in range(32))

SP = "sp"
XZR = "xzr"
FP = "x29"
LR = "x30"

#: Argument-passing registers of the AAPCS64-style calling convention.
ARG_GPRS: Tuple[str, ...] = tuple(f"x{i}" for i in range(8))
ARG_FPRS: Tuple[str, ...] = tuple(f"d{i}" for i in range(8))

#: Return-value registers.
RET_GPR = "x0"
RET_FPR = "d0"

#: Swift-style error register: a throwing callee reports its error object here
#: (the real Swift convention uses x21; see Section IV / Listing 10 context).
ERROR_REG = "x21"

#: Callee-saved registers (spilled in pairs by frame lowering; the source of
#: the paper's Listing 7/8 STP/LDP frame patterns).  x29/x30 are handled
#: separately by the prologue; x21 is excluded because it carries the Swift
#: error convention across call boundaries.
CALLEE_SAVED_GPRS: Tuple[str, ...] = ("x19", "x20", "x22", "x23", "x24",
                                      "x25", "x26", "x27", "x28")
CALLEE_SAVED_FPRS: Tuple[str, ...] = tuple(f"d{i}" for i in range(8, 16))

#: Registers available to the allocator.  x15/x16/x17 are reserved as spill
#: and call scratch; x18 is the platform register on Apple targets and never
#: allocated; x21 is the error register.
ALLOCATABLE_GPRS: Tuple[str, ...] = (
    tuple(f"x{i}" for i in range(0, 15)) + CALLEE_SAVED_GPRS
)
ALLOCATABLE_FPRS: Tuple[str, ...] = tuple(f"d{i}" for i in range(0, 16))

#: Caller-saved sets (clobbered by calls).
CALLER_SAVED_GPRS: Tuple[str, ...] = tuple(f"x{i}" for i in range(0, 18))
CALLER_SAVED_FPRS: Tuple[str, ...] = tuple(f"d{i}" for i in range(0, 8))

SCRATCH_GPR0 = "x16"
SCRATCH_GPR1 = "x17"
SCRATCH_GPR2 = "x15"
SCRATCH_FPR0 = "d16"
SCRATCH_FPR1 = "d17"

ALL_PHYSICAL = frozenset(GPRS) | frozenset(FPRS) | {SP, XZR}


class RegClass(Enum):
    """Register class of an operand."""

    GPR = "gpr"
    FPR = "fpr"


def is_physical(reg: str) -> bool:
    """Return True if *reg* names a physical register."""
    return reg in ALL_PHYSICAL


def is_virtual(reg: str) -> bool:
    """Return True if *reg* is a virtual register (``v<N>`` or ``fv<N>``)."""
    return (reg.startswith("v") or reg.startswith("fv")) and reg[-1].isdigit()


def reg_class(reg: str) -> RegClass:
    """Return the register class of a physical or virtual register."""
    if reg.startswith("d") or reg.startswith("fv"):
        return RegClass.FPR
    return RegClass.GPR


def is_callee_saved(reg: str) -> bool:
    """Return True if *reg* must be preserved across calls by the callee."""
    return reg in CALLEE_SAVED_GPRS or reg in CALLEE_SAVED_FPRS or reg in (FP, LR)


class VirtualRegisterAllocator:
    """Factory for fresh virtual register names, one per machine function."""

    def __init__(self) -> None:
        self._next_gpr = 0
        self._next_fpr = 0

    def new_gpr(self) -> str:
        name = f"v{self._next_gpr}"
        self._next_gpr += 1
        return name

    def new_fpr(self) -> str:
        name = f"fv{self._next_fpr}"
        self._next_fpr += 1
        return name

    def new(self, cls: RegClass) -> str:
        return self.new_fpr() if cls is RegClass.FPR else self.new_gpr()
