"""Machine-IR for the AArch64-like target.

This module defines the post-instruction-selection representation that the
register allocator, frame lowering, the MachineOutliner, the linker, and the
interpreter all operate on.  It deliberately mirrors LLVM MIR:

* fixed-width 4-byte instructions (AArch64 property the paper leans on for
  its byte accounting);
* explicit operands (destination first) plus *implicit* operand lists used
  at call sites, exactly like LLVM's implicit-use/def annotations;
* instruction identity for outlining = opcode + all operands, which is the
  analog of ``MachineInstr::isIdenticalTo`` used by LLVM's outliner mapper.

The opcode names follow AArch64 MIR spellings (``ORRXrs``, ``STPXpre`` ...)
so that mined patterns read like the paper's Listings 1-8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.isa.registers import LR, SP, XZR

INSTR_BYTES = 4  # fixed-width encoding

# --- Operand kinds -----------------------------------------------------------


@dataclass(frozen=True)
class Sym:
    """A reference to a linker-visible symbol (function or global)."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"@{self.name}"


@dataclass(frozen=True)
class Label:
    """A function-local basic-block label."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"%{self.name}"


class Cond(Enum):
    """Condition codes consumed by ``Bcc`` and ``CSETXi``."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    HS = "hs"  # unsigned >= (used by inline array bounds checks)
    LO = "lo"  # unsigned <

    def negate(self) -> "Cond":
        return _NEGATE[self]


_NEGATE = {
    Cond.EQ: Cond.NE,
    Cond.NE: Cond.EQ,
    Cond.LT: Cond.GE,
    Cond.GE: Cond.LT,
    Cond.GT: Cond.LE,
    Cond.LE: Cond.GT,
    Cond.HS: Cond.LO,
    Cond.LO: Cond.HS,
}

Operand = Union[str, int, float, Sym, Label, Cond]

NZCV = "nzcv"  # pseudo-register for the condition flags


class Opcode(Enum):
    """Supported machine opcodes (an AArch64 subset)."""

    # Integer moves / constants
    MOVZXi = "MOVZXi"      # dst, imm16, shift       dst = imm << shift
    MOVKXi = "MOVKXi"      # dst, imm16, shift       dst[shift+15:shift] = imm
    MOVNXi = "MOVNXi"      # dst, imm16, shift       dst = ~(imm << shift)
    ORRXrs = "ORRXrs"      # dst, a, b               dst = a | b  (MOV when a == xzr)

    # Integer arithmetic / logic
    ADDXri = "ADDXri"      # dst, src, imm
    ADDXrr = "ADDXrr"      # dst, a, b
    SUBXri = "SUBXri"      # dst, src, imm
    SUBXrr = "SUBXrr"      # dst, a, b
    SUBSXri = "SUBSXri"    # dst, src, imm           also sets nzcv
    SUBSXrr = "SUBSXrr"    # dst, a, b               also sets nzcv
    MADDXrrr = "MADDXrrr"  # dst, a, b, acc          dst = a*b + acc
    MSUBXrrr = "MSUBXrrr"  # dst, a, b, acc          dst = acc - a*b
    SDIVXrr = "SDIVXrr"    # dst, a, b
    ANDXrr = "ANDXrr"      # dst, a, b
    EORXrr = "EORXrr"      # dst, a, b
    LSLVXrr = "LSLVXrr"    # dst, a, b
    LSRVXrr = "LSRVXrr"    # dst, a, b
    ASRVXrr = "ASRVXrr"    # dst, a, b
    CSETXi = "CSETXi"      # dst, cond               reads nzcv

    # Address materialisation (global symbols take the classic 2-instr pair)
    ADRP = "ADRP"          # dst, sym                dst = page(sym)
    ADDlo = "ADDlo"        # dst, src, sym           dst = src + pageoff(sym)

    # Integer memory
    LDRXui = "LDRXui"      # dst, base, imm          load 8 bytes [base+imm]
    STRXui = "STRXui"      # src, base, imm
    LDRXroX = "LDRXroX"    # dst, base, idx          load 8 bytes [base + idx*8]
    STRXroX = "STRXroX"    # src, base, idx
    LDRBroX = "LDRBroX"    # dst, base, idx          load 1 byte  [base + idx]
    STRBroX = "STRBroX"    # src, base, idx
    LDPXi = "LDPXi"        # r1, r2, base, imm
    STPXi = "STPXi"        # r1, r2, base, imm
    STPXpre = "STPXpre"    # r1, r2, base, imm       pre-index writeback (push pair)
    LDPXpost = "LDPXpost"  # r1, r2, base, imm       post-index writeback (pop pair)
    STRXpre = "STRXpre"    # r, base, imm            pre-index writeback (push one)
    LDRXpost = "LDRXpost"  # r, base, imm            post-index writeback (pop one)

    # Floating point
    FMOVDr = "FMOVDr"      # dst, src
    FMOVDi = "FMOVDi"      # dst, imm(float)
    FADDDrr = "FADDDrr"
    FSUBDrr = "FSUBDrr"
    FMULDrr = "FMULDrr"
    FDIVDrr = "FDIVDrr"
    FSQRTDr = "FSQRTDr"    # dst, src
    FNEGDr = "FNEGDr"      # dst, src
    FCMPDrr = "FCMPDrr"    # a, b                    sets nzcv
    SCVTFDX = "SCVTFDX"    # dstD, srcX              int -> double
    FCVTZSXD = "FCVTZSXD"  # dstX, srcD              double -> int (truncating)
    LDRDui = "LDRDui"      # dst, base, imm
    STRDui = "STRDui"      # src, base, imm
    LDRDroX = "LDRDroX"    # dst, base, idx          [base + idx*8]
    STRDroX = "STRDroX"    # src, base, idx

    # Control flow
    B = "B"                # label-or-sym            unconditional (sym = tail call)
    Bcc = "Bcc"            # cond, label
    CBZX = "CBZX"          # reg, label
    CBNZX = "CBNZX"        # reg, label
    BL = "BL"              # sym                     call, defines lr
    BLR = "BLR"            # reg                     indirect call, defines lr
    RET = "RET"            # implicit use of lr
    BRK = "BRK"            # imm                     trap
    NOP = "NOP"


# (def operand indices, use operand indices) for explicit operands.
_DEF_USE: Dict[Opcode, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {
    Opcode.MOVZXi: ((0,), ()),
    Opcode.MOVKXi: ((0,), (0,)),
    Opcode.MOVNXi: ((0,), ()),
    Opcode.ORRXrs: ((0,), (1, 2)),
    Opcode.ADDXri: ((0,), (1,)),
    Opcode.ADDXrr: ((0,), (1, 2)),
    Opcode.SUBXri: ((0,), (1,)),
    Opcode.SUBXrr: ((0,), (1, 2)),
    Opcode.SUBSXri: ((0,), (1,)),
    Opcode.SUBSXrr: ((0,), (1, 2)),
    Opcode.MADDXrrr: ((0,), (1, 2, 3)),
    Opcode.MSUBXrrr: ((0,), (1, 2, 3)),
    Opcode.SDIVXrr: ((0,), (1, 2)),
    Opcode.ANDXrr: ((0,), (1, 2)),
    Opcode.EORXrr: ((0,), (1, 2)),
    Opcode.LSLVXrr: ((0,), (1, 2)),
    Opcode.LSRVXrr: ((0,), (1, 2)),
    Opcode.ASRVXrr: ((0,), (1, 2)),
    Opcode.CSETXi: ((0,), ()),
    Opcode.ADRP: ((0,), ()),
    Opcode.ADDlo: ((0,), (1,)),
    Opcode.LDRXui: ((0,), (1,)),
    Opcode.STRXui: ((), (0, 1)),
    Opcode.LDRXroX: ((0,), (1, 2)),
    Opcode.STRXroX: ((), (0, 1, 2)),
    Opcode.LDRBroX: ((0,), (1, 2)),
    Opcode.STRBroX: ((), (0, 1, 2)),
    Opcode.LDPXi: ((0, 1), (2,)),
    Opcode.STPXi: ((), (0, 1, 2)),
    Opcode.STPXpre: ((2,), (0, 1, 2)),
    Opcode.LDPXpost: ((0, 1, 2), (2,)),
    Opcode.STRXpre: ((1,), (0, 1)),
    Opcode.LDRXpost: ((0, 1), (1,)),
    Opcode.FMOVDr: ((0,), (1,)),
    Opcode.FMOVDi: ((0,), ()),
    Opcode.FADDDrr: ((0,), (1, 2)),
    Opcode.FSUBDrr: ((0,), (1, 2)),
    Opcode.FMULDrr: ((0,), (1, 2)),
    Opcode.FDIVDrr: ((0,), (1, 2)),
    Opcode.FSQRTDr: ((0,), (1,)),
    Opcode.FNEGDr: ((0,), (1,)),
    Opcode.FCMPDrr: ((), (0, 1)),
    Opcode.SCVTFDX: ((0,), (1,)),
    Opcode.FCVTZSXD: ((0,), (1,)),
    Opcode.LDRDui: ((0,), (1,)),
    Opcode.STRDui: ((), (0, 1)),
    Opcode.LDRDroX: ((0,), (1, 2)),
    Opcode.STRDroX: ((), (0, 1, 2)),
    Opcode.B: ((), ()),
    Opcode.Bcc: ((), ()),
    Opcode.CBZX: ((), (0,)),
    Opcode.CBNZX: ((), (0,)),
    Opcode.BL: ((), ()),
    Opcode.BLR: ((), (0,)),
    Opcode.RET: ((), ()),
    Opcode.BRK: ((), ()),
    Opcode.NOP: ((), ()),
}

_SETS_FLAGS = {Opcode.SUBSXri, Opcode.SUBSXrr, Opcode.FCMPDrr}
_READS_FLAGS = {Opcode.CSETXi, Opcode.Bcc}
_TERMINATORS = {Opcode.B, Opcode.Bcc, Opcode.CBZX, Opcode.CBNZX, Opcode.RET, Opcode.BRK}
_CALLS = {Opcode.BL, Opcode.BLR}
_LOADS = {
    Opcode.LDRXui, Opcode.LDRXroX, Opcode.LDRBroX, Opcode.LDPXi,
    Opcode.LDPXpost, Opcode.LDRDui, Opcode.LDRDroX,
}
_STORES = {
    Opcode.STRXui, Opcode.STRXroX, Opcode.STRBroX, Opcode.STPXi,
    Opcode.STPXpre, Opcode.STRDui, Opcode.STRDroX, Opcode.STRXpre,
}
_LOADS.add(Opcode.LDRXpost)


@dataclass
class MachineInstr:
    """A single fixed-width machine instruction.

    ``implicit_uses`` / ``implicit_defs`` carry the call-site register
    conventions (argument registers used, return register defined) in the
    same way LLVM MIR annotates calls; they participate in liveness and in
    outlining pattern identity.
    """

    opcode: Opcode
    operands: Tuple[Operand, ...] = ()
    implicit_uses: Tuple[str, ...] = ()
    implicit_defs: Tuple[str, ...] = ()

    # -- identity -------------------------------------------------------

    def key(self) -> Tuple:
        """Hashable identity used by the outliner's instruction mapper."""
        return (self.opcode, self.operands, self.implicit_uses, self.implicit_defs)

    # -- operand classification ------------------------------------------

    def defs(self) -> Tuple[str, ...]:
        """Registers (incl. nzcv) written by this instruction."""
        idxs, _ = _DEF_USE[self.opcode]
        out = [self.operands[i] for i in idxs if isinstance(self.operands[i], str)]
        out.extend(self.implicit_defs)
        if self.opcode in _SETS_FLAGS:
            out.append(NZCV)
        if self.opcode in _CALLS:
            out.append(LR)
        return tuple(r for r in out if r != XZR)

    def uses(self) -> Tuple[str, ...]:
        """Registers (incl. nzcv) read by this instruction."""
        _, idxs = _DEF_USE[self.opcode]
        out = [self.operands[i] for i in idxs if isinstance(self.operands[i], str)]
        out.extend(self.implicit_uses)
        if self.opcode in _READS_FLAGS:
            out.append(NZCV)
        if self.opcode is Opcode.RET:
            out.append(LR)
        return tuple(r for r in out if r != XZR)

    # -- predicates -------------------------------------------------------

    @property
    def is_call(self) -> bool:
        return self.opcode in _CALLS

    @property
    def is_terminator(self) -> bool:
        return self.opcode in _TERMINATORS or self.is_tail_call

    @property
    def is_return(self) -> bool:
        return self.opcode is Opcode.RET

    @property
    def is_tail_call(self) -> bool:
        return self.opcode is Opcode.B and self.operands and isinstance(self.operands[0], Sym)

    @property
    def is_load(self) -> bool:
        return self.opcode in _LOADS

    @property
    def is_store(self) -> bool:
        return self.opcode in _STORES

    @property
    def is_branch_to_label(self) -> bool:
        return any(isinstance(op, Label) for op in self.operands)

    def reads_sp(self) -> bool:
        return SP in self.uses()

    def writes_sp(self) -> bool:
        return SP in self.defs()

    def touches_lr(self) -> bool:
        """True if the instruction explicitly names the link register.

        Calls implicitly define LR; this predicate is about *explicit* LR
        operands (e.g. a prologue ``STPXpre x29, x30, ...``), which make a
        sequence illegal to outline.
        """
        explicit = [op for op in self.operands if isinstance(op, str)]
        return LR in explicit

    def branch_target(self) -> Optional[str]:
        """Name of the local label this instruction branches to, if any."""
        for op in self.operands:
            if isinstance(op, Label):
                return op.name
        return None

    def callee(self) -> Optional[str]:
        """Symbol name of the direct callee for BL / tail-call B."""
        if self.opcode is Opcode.BL or self.is_tail_call:
            op = self.operands[0]
            if isinstance(op, Sym):
                return op.name
        return None

    # -- rendering --------------------------------------------------------

    def render(self) -> str:
        """Assembly-like textual form (for logs and pattern reports)."""
        def fmt(op: Operand) -> str:
            if isinstance(op, str):
                return f"${op}"
            if isinstance(op, Sym):
                return f"@{op.name}"
            if isinstance(op, Label):
                return f"%{op.name}"
            if isinstance(op, Cond):
                return op.value
            return repr(op)

        ops = ", ".join(fmt(op) for op in self.operands)
        return f"{self.opcode.value} {ops}".rstrip()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MI {self.render()}>"


@dataclass
class MachineBlock:
    """A basic block: straight-line instructions ending in terminator(s)."""

    label: str
    instrs: List[MachineInstr] = field(default_factory=list)

    def append(self, instr: MachineInstr) -> None:
        self.instrs.append(instr)

    def successors(self) -> List[str]:
        """Labels of blocks this block can branch to (fallthrough excluded)."""
        out = []
        for instr in self.instrs:
            target = instr.branch_target()
            if target is not None:
                out.append(target)
        return out

    def falls_through(self) -> bool:
        """True if control can reach the next block in layout order."""
        if not self.instrs:
            return True
        last = self.instrs[-1]
        if last.opcode in (Opcode.B, Opcode.RET, Opcode.BRK) or last.is_tail_call:
            return False
        return True


@dataclass
class MachineFunction:
    """A machine function: ordered blocks plus frame/linkage metadata."""

    name: str
    blocks: List[MachineBlock] = field(default_factory=list)
    source_module: str = ""
    is_outlined: bool = False
    outline_round: int = 0
    num_spill_slots: int = 0
    #: Frame size in bytes reserved below the fp/lr pair (filled by frame lowering).
    frame_bytes: int = 0

    def block(self, label: str) -> MachineBlock:
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise KeyError(f"no block {label!r} in {self.name}")

    def new_block(self, label: str) -> MachineBlock:
        blk = MachineBlock(label)
        self.blocks.append(blk)
        return blk

    def instructions(self) -> Iterable[MachineInstr]:
        for blk in self.blocks:
            yield from blk.instrs

    @property
    def num_instrs(self) -> int:
        return sum(len(blk.instrs) for blk in self.blocks)

    @property
    def size_bytes(self) -> int:
        return self.num_instrs * INSTR_BYTES

    def render(self) -> str:
        lines = [f"define @{self.name} (module {self.source_module or '?'}):"]
        for blk in self.blocks:
            lines.append(f"{blk.label}:")
            lines.extend(f"    {i.render()}" for i in blk.instrs)
        return "\n".join(lines)


@dataclass
class MachineGlobal:
    """A data-section global carried through to the final binary.

    ``values`` is the logical initialiser: a list of words (scalar slot or
    array payload) or a ``str`` (string object).  ``is_object`` marks
    statically allocated heap-shaped objects (const arrays / string
    literals), which get an immortal object header in the data section.
    ``origin_module`` records which source module defined it, which is what
    the data-layout-preserving llvm-link mode keys on (Section VI-3).
    """

    name: str
    values: Union[List[Union[int, float]], str]
    origin_module: str = ""
    is_const: bool = False
    is_object: bool = False
    elem_is_float: bool = False

    @property
    def size_bytes(self) -> int:
        from repro.runtime import layout as _layout

        if isinstance(self.values, str):
            return _layout.STRING_OBJECT_BYTES + 8 * max(1, len(self.values))
        if self.is_object:
            return _layout.ARRAY_OBJECT_BYTES + 8 * max(1, len(self.values))
        return max(8, 8 * len(self.values))


@dataclass
class MachineModule:
    """A compiled object file: functions plus data globals."""

    name: str
    functions: List[MachineFunction] = field(default_factory=list)
    globals: List[MachineGlobal] = field(default_factory=list)

    def function(self, name: str) -> MachineFunction:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function {name!r} in module {self.name}")

    @property
    def num_instrs(self) -> int:
        return sum(fn.num_instrs for fn in self.functions)

    @property
    def text_bytes(self) -> int:
        return sum(fn.size_bytes for fn in self.functions)

    @property
    def data_bytes(self) -> int:
        return sum(g.size_bytes for g in self.globals)


def mov_rr(dst: str, src: str) -> MachineInstr:
    """The canonical AArch64 register move: ``ORRXrs dst, xzr, src``."""
    return MachineInstr(Opcode.ORRXrs, (dst, XZR, src))


def is_mov_rr(instr: MachineInstr) -> bool:
    return instr.opcode is Opcode.ORRXrs and instr.operands[1] == XZR


def materialize_constant(dst: str, value: int) -> List[MachineInstr]:
    """Materialise a 64-bit constant with MOVZ/MOVK/MOVN chunks.

    Mirrors AArch64 constant islands: small constants take one instruction;
    wide ones take up to four.  This is one of the mundane sources of
    repeated short sequences the paper observes.
    """
    value &= (1 << 64) - 1
    # Prefer MOVN for values that are mostly ones (small negatives).
    inverted = value ^ ((1 << 64) - 1)
    if _count_nonzero_halfwords(inverted) < _count_nonzero_halfwords(value):
        out = []
        first = True
        for shift in range(0, 64, 16):
            chunk = (inverted >> shift) & 0xFFFF
            if chunk == 0 and not (first and shift == 48):
                continue
            if first:
                out.append(MachineInstr(Opcode.MOVNXi, (dst, chunk, shift)))
                first = False
            else:
                out.append(
                    MachineInstr(Opcode.MOVKXi, (dst, (value >> shift) & 0xFFFF, shift))
                )
        if not out:
            out.append(MachineInstr(Opcode.MOVNXi, (dst, 0, 0)))
        return out

    out = []
    first = True
    for shift in range(0, 64, 16):
        chunk = (value >> shift) & 0xFFFF
        if chunk == 0 and not first:
            continue
        if chunk == 0 and first and shift < 48:
            continue
        if first:
            out.append(MachineInstr(Opcode.MOVZXi, (dst, chunk, shift)))
            first = False
        else:
            out.append(MachineInstr(Opcode.MOVKXi, (dst, chunk, shift)))
    if not out:
        out.append(MachineInstr(Opcode.MOVZXi, (dst, 0, 0)))
    return out


def _count_nonzero_halfwords(value: int) -> int:
    return sum(1 for shift in range(0, 64, 16) if (value >> shift) & 0xFFFF)
