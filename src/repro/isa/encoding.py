"""Byte-size accounting — deprecated fixed-width aliases.

All size arithmetic now lives on :class:`repro.target.spec.TargetSpec`
(``instr_bytes`` / ``seq_bytes`` / ``function_text_bytes`` /
``total_text_bytes`` / ``total_metadata_bytes``), which supports both
fixed- and variable-width encodings.  This module keeps the old names
alive for one release as aliases pinned to the ``arm64`` spec — they are
inherently fixed-width (``instrs_to_bytes`` only sees a count), so they
delegate to ``arm64`` explicitly rather than the session default target.
"""

from __future__ import annotations

from typing import Iterable

from repro.isa.instructions import INSTR_BYTES, MachineFunction
from repro.target.arm64 import ARM64

#: Deprecated: use ``TargetSpec.function_metadata_bytes``.
FUNCTION_METADATA_BYTES = ARM64.function_metadata_bytes

#: Deprecated: use ``TargetSpec.function_alignment``.
FUNCTION_ALIGNMENT = ARM64.function_alignment


def instrs_to_bytes(num_instrs: int) -> int:
    """Deprecated: size of ``num_instrs`` fixed-width arm64 instructions."""
    return num_instrs * INSTR_BYTES


def function_text_bytes(fn: MachineFunction) -> int:
    """Deprecated: use ``TargetSpec.function_text_bytes``."""
    return ARM64.function_text_bytes(fn)


def total_text_bytes(functions: Iterable[MachineFunction]) -> int:
    """Deprecated: use ``TargetSpec.total_text_bytes``."""
    return ARM64.total_text_bytes(functions)


def total_metadata_bytes(functions: Iterable[MachineFunction]) -> int:
    """Deprecated: use ``TargetSpec.total_metadata_bytes``."""
    return ARM64.total_metadata_bytes(functions)
