"""Byte-size accounting for the fixed-width target.

AArch64 instructions are all 4 bytes, a property the paper exploits when it
counts instructions to measure size savings ("the saving is computed based on
the number of instructions, which is fixed-width in AArch64").  These helpers
centralise the arithmetic used by the cost model, the linker, and the
experiment reports.
"""

from __future__ import annotations

from typing import Iterable

from repro.isa.instructions import INSTR_BYTES, MachineFunction

#: Per-function non-code overhead carried into the final binary: a symbol
#: table entry and compact unwind info.  This is why Figure 12's *binary*
#: size shrinks slightly less than its *code* size and why each outlined
#: function is not free.
FUNCTION_METADATA_BYTES = 32

#: Functions are laid out at 4-byte alignment (no padding for fixed width).
FUNCTION_ALIGNMENT = 4


def instrs_to_bytes(num_instrs: int) -> int:
    """Size in bytes of ``num_instrs`` fixed-width instructions."""
    return num_instrs * INSTR_BYTES


def function_text_bytes(fn: MachineFunction) -> int:
    """__text bytes contributed by one function (alignment included)."""
    size = fn.size_bytes
    rem = size % FUNCTION_ALIGNMENT
    if rem:
        size += FUNCTION_ALIGNMENT - rem
    return size


def total_text_bytes(functions: Iterable[MachineFunction]) -> int:
    return sum(function_text_bytes(fn) for fn in functions)


def total_metadata_bytes(functions: Iterable[MachineFunction]) -> int:
    return sum(FUNCTION_METADATA_BYTES for _ in functions)
