"""LIR layer: the LLVM-IR analog (IR, irgen, passes, llvm-link)."""

from repro.lir import ir
from repro.lir.irgen import generate_lir
from repro.lir.linker import LinkOptions, link_modules

__all__ = ["ir", "generate_lir", "link_modules", "LinkOptions"]
