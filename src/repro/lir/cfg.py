"""CFG analyses for LIR: reachability, dominator tree, dominance frontiers.

Implements the Cooper–Harvey–Kennedy iterative dominator algorithm, which is
what mem2reg's phi placement and the verifier's SSA checks build on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.lir.ir import LIRFunction


def reachable_blocks(fn: LIRFunction) -> List[str]:
    """Labels of blocks reachable from entry, in reverse post-order."""
    succs = {blk.label: blk.successors() for blk in fn.blocks}
    visited: Set[str] = set()
    post: List[str] = []

    # Iterative DFS (deep CFGs from long try-chains would blow the stack).
    stack = [(fn.entry.label, iter(succs[fn.entry.label]))]
    visited.add(fn.entry.label)
    while stack:
        label, it = stack[-1]
        advanced = False
        for succ in it:
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, iter(succs[succ])))
                advanced = True
                break
        if not advanced:
            post.append(label)
            stack.pop()
    post.reverse()
    return post


def compute_dominators(fn: LIRFunction) -> Dict[str, Optional[str]]:
    """Immediate dominator of each reachable block (entry maps to None)."""
    rpo = reachable_blocks(fn)
    index = {label: i for i, label in enumerate(rpo)}
    preds_all = fn.predecessors()
    preds = {
        label: [p for p in preds_all.get(label, []) if p in index]
        for label in rpo
    }
    idom: Dict[str, Optional[str]] = {rpo[0]: rpo[0]}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for label in rpo[1:]:
            candidates = [p for p in preds[label] if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom.get(label) != new_idom:
                idom[label] = new_idom
                changed = True
    result: Dict[str, Optional[str]] = {rpo[0]: None}
    for label in rpo[1:]:
        result[label] = idom.get(label)
    return result


def dominance_frontiers(fn: LIRFunction) -> Dict[str, Set[str]]:
    """Dominance frontier of each reachable block."""
    idom = compute_dominators(fn)
    preds_all = fn.predecessors()
    frontiers: Dict[str, Set[str]] = {label: set() for label in idom}
    for label in idom:
        preds = [p for p in preds_all.get(label, []) if p in idom]
        if len(preds) < 2:
            continue
        for pred in preds:
            runner = pred
            while runner is not None and runner != idom[label]:
                frontiers[runner].add(label)
                runner = idom[runner]
    return frontiers


def dominates(idom: Dict[str, Optional[str]], a: str, b: str) -> bool:
    """True if block *a* dominates block *b* (given an idom map)."""
    runner: Optional[str] = b
    while runner is not None:
        if runner == a:
            return True
        runner = idom.get(runner)
    return False
