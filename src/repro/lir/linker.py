"""llvm-link analog: merge many LIR modules into one.

Models the two practical challenges of Section VI:

* **GC-metadata conflicts (VI-2)** — in ``monolithic`` metadata mode each
  module carries a single packed word encoding its producer compiler and
  version; merging a Swift-produced module with a clang-produced module
  raises :class:`GCMetadataConflict`, exactly as stock llvm-link did.  The
  upstreamed fix is the ``attributes`` mode, which merges per-key attribute
  dicts and only rejects *semantically* conflicting keys (the GC mode).

* **Data-layout destruction (VI-3)** — ``data_layout="interleaved"``
  reorders the merged globals by symbol hash, intermixing data from
  disparate modules and destroying the programmer's module locality (the
  behaviour that caused Uber's +10% page-fault regression).
  ``data_layout="module-order"`` is the paper's fix: globals stay grouped
  in their original per-module order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import GCMetadataConflict, LinkError
from repro.lir import ir


@dataclass
class LinkOptions:
    #: "attributes" (fixed, upstreamed) or "monolithic" (conflict-prone).
    gc_metadata_mode: str = "attributes"
    #: "module-order" (fixed) or "interleaved" (llvm-link legacy behaviour).
    data_layout: str = "module-order"
    merged_name: str = "merged"


def link_modules(modules: Sequence[ir.LIRModule],
                 options: Optional[LinkOptions] = None) -> ir.LIRModule:
    """Merge *modules* into a single module (the Figure 10 llvm-link step)."""
    options = options or LinkOptions()
    if not modules:
        raise LinkError("nothing to link")
    merged = ir.LIRModule(name=options.merged_name)
    merged.metadata["objc_gc_attrs"] = {}
    seen_functions: Dict[str, str] = {}
    seen_globals: Dict[str, str] = {}
    entry: Optional[str] = None

    for module in modules:
        _merge_metadata(merged, module, options.gc_metadata_mode)
        for fn in module.functions:
            if fn.symbol in seen_functions:
                raise LinkError(
                    f"duplicate symbol {fn.symbol!r} defined in both "
                    f"{seen_functions[fn.symbol]!r} and {module.name!r}")
            seen_functions[fn.symbol] = module.name
            if not fn.source_module:
                fn.source_module = module.name
            merged.functions.append(fn)
        for gbl in module.globals:
            if gbl.symbol in seen_globals:
                raise LinkError(
                    f"duplicate global {gbl.symbol!r} defined in both "
                    f"{seen_globals[gbl.symbol]!r} and {module.name!r}")
            seen_globals[gbl.symbol] = module.name
            if not gbl.origin_module:
                gbl.origin_module = module.name
            merged.globals.append(gbl)
        if module.entry_symbol:
            if entry is not None and entry != module.entry_symbol:
                raise LinkError(
                    f"two entry points: {entry!r} and "
                    f"{module.entry_symbol!r}")
            entry = module.entry_symbol
    merged.entry_symbol = entry
    _order_globals(merged, options.data_layout)
    return merged


def _merge_metadata(merged: ir.LIRModule, module: ir.LIRModule,
                    mode: str) -> None:
    if mode == "monolithic":
        incoming = module.metadata.get("objc_gc")
        if incoming is None:
            return
        existing = merged.metadata.get("objc_gc")
        if existing is None:
            merged.metadata["objc_gc"] = incoming
        elif existing != incoming:
            raise GCMetadataConflict(
                "conflicting 'Objective-C Garbage Collection' module flags: "
                f"{existing!r} (merged so far) vs {incoming!r} "
                f"(module {module.name!r}); use attribute-based GC metadata")
        return
    if mode == "attributes":
        incoming_attrs: Dict[str, object] = dict(
            module.metadata.get("objc_gc_attrs", {}))
        target: Dict[str, object] = merged.metadata["objc_gc_attrs"]
        for key, value in incoming_attrs.items():
            if key == "mode":
                existing_mode = target.get("mode")
                if existing_mode is not None and existing_mode != value:
                    raise GCMetadataConflict(
                        f"modules disagree on GC *mode*: {existing_mode!r} vs "
                        f"{value!r} (module {module.name!r})")
                target["mode"] = value
            else:
                # Producer-specific attributes coexist side by side; the
                # link phase only inspects the keys relevant to it.
                target.setdefault(key, value)
        return
    raise LinkError(f"unknown gc metadata mode {mode!r}")


def _order_globals(merged: ir.LIRModule, layout: str) -> None:
    if layout == "module-order":
        # Already appended module by module: preserve as-is.
        return
    if layout == "interleaved":
        # Deterministic hash order intermixes globals from all modules,
        # modelling upstream llvm-link's disregard for module data affinity.
        merged.globals.sort(
            key=lambda g: hashlib.sha1(g.symbol.encode()).hexdigest())
        return
    raise LinkError(f"unknown data layout mode {layout!r}")
