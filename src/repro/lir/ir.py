"""LIR: the LLVM-IR analog.

A typed, CFG-based register IR.  IRGen emits it in "alloca form" (mutable
locals behind ``Alloca``/``Load``/``Store``); ``mem2reg`` raises it to SSA
with phi nodes; the backend's phi-elimination lowers it back out of SSA,
producing the copy sequences the paper attributes to LLVM's out-of-SSA
translation (Listing 11).

Value classes are just ``"i"`` (64-bit integer / pointer) and ``"f"``
(64-bit float); every Swiftlet value is one machine word.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import LIRError

Value = int  # per-function virtual value id


@dataclass(frozen=True)
class Const:
    """Immediate operand."""

    value: Union[int, float]
    is_float: bool = False

    def __repr__(self) -> str:  # pragma: no cover
        return f"c{self.value}"


@dataclass(frozen=True)
class GlobalRef:
    """Address of a data global."""

    symbol: str

    def __repr__(self) -> str:  # pragma: no cover
        return f"@{self.symbol}"


@dataclass(frozen=True)
class FuncRef:
    """Address of a function (for closures / indirect calls)."""

    symbol: str

    def __repr__(self) -> str:  # pragma: no cover
        return f"&{self.symbol}"


Operand = Union[Value, Const, GlobalRef, FuncRef]


def is_value(op: Operand) -> bool:
    return isinstance(op, int) and not isinstance(op, bool)


# --- Instructions -------------------------------------------------------------


@dataclass
class LIRInstr:
    result: Optional[Value] = None

    def operands(self) -> Tuple[Operand, ...]:
        return ()

    def replace_operands(self, mapping: Dict[Value, Operand]) -> None:
        """Rewrite value operands through *mapping* (in place)."""

    @property
    def has_side_effects(self) -> bool:
        return False


def _map_op(op: Operand, mapping: Dict[Value, Operand]) -> Operand:
    if is_value(op) and op in mapping:
        return mapping[op]
    return op


@dataclass
class Alloca(LIRInstr):
    """One 8-byte stack slot; only ever used by Load/Store (promotable)."""

    name: str = ""
    is_float: bool = False


@dataclass
class Load(LIRInstr):
    ptr: Operand = -1
    is_float: bool = False

    def operands(self):
        return (self.ptr,)

    def replace_operands(self, mapping):
        self.ptr = _map_op(self.ptr, mapping)


@dataclass
class Store(LIRInstr):
    value: Operand = -1
    ptr: Operand = -1
    is_float: bool = False

    def operands(self):
        return (self.value, self.ptr)

    def replace_operands(self, mapping):
        self.value = _map_op(self.value, mapping)
        self.ptr = _map_op(self.ptr, mapping)

    @property
    def has_side_effects(self):
        return True


@dataclass
class BinOp(LIRInstr):
    op: str = ""  # + - * / % & | ^ << >>
    lhs: Operand = -1
    rhs: Operand = -1
    is_float: bool = False

    def operands(self):
        return (self.lhs, self.rhs)

    def replace_operands(self, mapping):
        self.lhs = _map_op(self.lhs, mapping)
        self.rhs = _map_op(self.rhs, mapping)

    @property
    def has_side_effects(self):
        # Integer division/modulo can trap on zero.
        return self.op in ("/", "%") and not self.is_float


@dataclass
class Cmp(LIRInstr):
    pred: str = ""  # == != < <= > >=
    lhs: Operand = -1
    rhs: Operand = -1
    operand_is_float: bool = False

    def operands(self):
        return (self.lhs, self.rhs)

    def replace_operands(self, mapping):
        self.lhs = _map_op(self.lhs, mapping)
        self.rhs = _map_op(self.rhs, mapping)


@dataclass
class Neg(LIRInstr):
    value: Operand = -1
    is_float: bool = False

    def operands(self):
        return (self.value,)

    def replace_operands(self, mapping):
        self.value = _map_op(self.value, mapping)


@dataclass
class Not(LIRInstr):
    """Boolean not (input is 0/1)."""

    value: Operand = -1

    def operands(self):
        return (self.value,)

    def replace_operands(self, mapping):
        self.value = _map_op(self.value, mapping)


@dataclass
class Convert(LIRInstr):
    kind: str = ""  # int_to_double | double_to_int
    value: Operand = -1

    def operands(self):
        return (self.value,)

    def replace_operands(self, mapping):
        self.value = _map_op(self.value, mapping)


@dataclass
class PtrAdd(LIRInstr):
    base: Operand = -1
    offset: Operand = -1  # byte offset

    def operands(self):
        return (self.base, self.offset)

    def replace_operands(self, mapping):
        self.base = _map_op(self.base, mapping)
        self.offset = _map_op(self.offset, mapping)


@dataclass
class GlobalAddr(LIRInstr):
    symbol: str = ""


@dataclass
class FuncAddr(LIRInstr):
    symbol: str = ""


@dataclass
class Call(LIRInstr):
    """Direct (``callee`` is a symbol) or indirect (``callee_value``) call.

    ``throws`` marks the Swift error convention: the callee writes the error
    register (0 = success, code+1 on throw); the caller reads it back with
    :class:`ReadError`.
    """

    callee: str = ""
    callee_value: Optional[Operand] = None
    args: List[Operand] = field(default_factory=list)
    throws: bool = False
    ret_is_float: bool = False
    arg_is_float: Tuple[bool, ...] = ()

    def operands(self):
        ops = tuple(self.args)
        if self.callee_value is not None:
            ops = (self.callee_value,) + ops
        return ops

    def replace_operands(self, mapping):
        self.args = [_map_op(a, mapping) for a in self.args]
        if self.callee_value is not None:
            self.callee_value = _map_op(self.callee_value, mapping)

    @property
    def has_side_effects(self):
        return True


@dataclass
class ReadError(LIRInstr):
    """Read the error register after a throwing call (raw, 0 = success)."""

    @property
    def has_side_effects(self):
        return True  # ordering against calls matters


@dataclass
class SetError(LIRInstr):
    """Write the error register (callee side)."""

    value: Operand = -1

    def operands(self):
        return (self.value,)

    def replace_operands(self, mapping):
        self.value = _map_op(self.value, mapping)

    @property
    def has_side_effects(self):
        return True


@dataclass
class Phi(LIRInstr):
    """SSA phi: ``incomings`` maps predecessor label -> operand."""

    incomings: List[Tuple[str, Operand]] = field(default_factory=list)
    is_float: bool = False

    def operands(self):
        return tuple(op for _, op in self.incomings)

    def replace_operands(self, mapping):
        self.incomings = [(lbl, _map_op(op, mapping))
                          for lbl, op in self.incomings]


@dataclass
class Copy(LIRInstr):
    """Register copy introduced by out-of-SSA translation."""

    value: Operand = -1
    is_float: bool = False

    def operands(self):
        return (self.value,)

    def replace_operands(self, mapping):
        self.value = _map_op(self.value, mapping)


# --- Terminators ---------------------------------------------------------------


@dataclass
class TermInstr(LIRInstr):
    @property
    def has_side_effects(self):
        return True


@dataclass
class Br(TermInstr):
    target: str = ""


@dataclass
class CondBr(TermInstr):
    cond: Operand = -1
    true_target: str = ""
    false_target: str = ""

    def operands(self):
        return (self.cond,)

    def replace_operands(self, mapping):
        self.cond = _map_op(self.cond, mapping)


@dataclass
class Ret(TermInstr):
    value: Optional[Operand] = None
    is_float: bool = False

    def operands(self):
        return (self.value,) if self.value is not None else ()

    def replace_operands(self, mapping):
        if self.value is not None:
            self.value = _map_op(self.value, mapping)


@dataclass
class Trap(TermInstr):
    reason: str = "trap"


@dataclass
class Unreachable(TermInstr):
    pass


# --- Containers -----------------------------------------------------------------


@dataclass
class LIRBlock:
    label: str
    instrs: List[LIRInstr] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[TermInstr]:
        if self.instrs and isinstance(self.instrs[-1], TermInstr):
            return self.instrs[-1]
        return None

    def successors(self) -> List[str]:
        term = self.terminator
        if isinstance(term, Br):
            return [term.target]
        if isinstance(term, CondBr):
            return [term.true_target, term.false_target]
        return []

    def phis(self) -> List[Phi]:
        out = []
        for instr in self.instrs:
            if isinstance(instr, Phi):
                out.append(instr)
            else:
                break
        return out


@dataclass
class LIRFunction:
    symbol: str
    params: List[Value] = field(default_factory=list)
    param_is_float: List[bool] = field(default_factory=list)
    ret_is_float: bool = False
    has_return_value: bool = False
    throws: bool = False
    blocks: List[LIRBlock] = field(default_factory=list)
    source_module: str = ""
    next_value: Value = 0

    def new_value(self) -> Value:
        value = self.next_value
        self.next_value += 1
        return value

    def block(self, label: str) -> LIRBlock:
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise LIRError(f"no block {label!r} in {self.symbol}")

    def block_index(self, label: str) -> int:
        for i, blk in enumerate(self.blocks):
            if blk.label == label:
                return i
        raise LIRError(f"no block {label!r} in {self.symbol}")

    def new_block(self, label: str) -> LIRBlock:
        if any(b.label == label for b in self.blocks):
            raise LIRError(f"duplicate block {label!r} in {self.symbol}")
        blk = LIRBlock(label)
        self.blocks.append(blk)
        return blk

    def predecessors(self) -> Dict[str, List[str]]:
        preds: Dict[str, List[str]] = {blk.label: [] for blk in self.blocks}
        for blk in self.blocks:
            for succ in blk.successors():
                preds[succ].append(blk.label)
        return preds

    @property
    def entry(self) -> LIRBlock:
        return self.blocks[0]

    @property
    def num_instrs(self) -> int:
        return sum(len(b.instrs) for b in self.blocks)

    def instructions(self) -> Iterable[LIRInstr]:
        for blk in self.blocks:
            yield from blk.instrs

    def render(self) -> str:
        lines = [f"define @{self.symbol}({', '.join(f'%{p}' for p in self.params)})"
                 f"{' throws' if self.throws else ''} "
                 f"[module {self.source_module or '?'}]"]
        for blk in self.blocks:
            lines.append(f"{blk.label}:")
            for instr in blk.instrs:
                res = f"%{instr.result} = " if instr.result is not None else ""
                kind = type(instr).__name__
                fields_ = {k: v for k, v in vars(instr).items() if k != "result"}
                lines.append(f"    {res}{kind} {fields_}")
        return "\n".join(lines)


@dataclass
class LIRGlobal:
    """A data-section global.

    ``is_object``: the symbol names a statically allocated heap-shaped object
    (const array / string literal); otherwise it is a raw 8-byte slot.
    ``origin_module`` drives the data-layout-preserving link mode (§VI-3).
    """

    symbol: str
    init: object  # int | float | str | list
    is_object: bool = False
    elem_is_float: bool = False
    origin_module: str = ""
    is_const: bool = True


@dataclass
class LIRModule:
    name: str
    functions: List[LIRFunction] = field(default_factory=list)
    globals: List[LIRGlobal] = field(default_factory=list)
    #: Module metadata flags; the GC metadata entry reproduces the Section
    #: VI-2 llvm-link conflict.  Keys -> arbitrary values.
    metadata: Dict[str, object] = field(default_factory=dict)
    entry_symbol: Optional[str] = None

    def function(self, symbol: str) -> LIRFunction:
        for fn in self.functions:
            if fn.symbol == symbol:
                return fn
        raise LIRError(f"no function {symbol!r} in LIR module {self.name}")

    def has_function(self, symbol: str) -> bool:
        return any(fn.symbol == symbol for fn in self.functions)

    @property
    def num_instrs(self) -> int:
        return sum(fn.num_instrs for fn in self.functions)
