"""IRGen: lowers SIL to LIR.

Expands the high-level SIL operations into the explicit instruction
sequences whose lowered machine code repeats across the program:

* ARC ops become ``swift_retain``/``swift_release`` calls;
* field / array / string accesses become header loads, inline bounds checks,
  and raw loads/stores;
* allocation becomes the 3-argument ``swift_allocObject`` call of Listing 3;
* the throwing convention becomes error-register writes + checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import LIRError
from repro.frontend.types import DOUBLE, VOID, Type
from repro.lir import ir
from repro.runtime import layout, names
from repro.sil import sil


def _is_float_ty(ty: Optional[Type]) -> bool:
    return ty == DOUBLE


def _elem_kind(ty: Optional[Type]) -> int:
    if ty is None:
        return layout.ELEM_PLAIN
    if ty.is_ref():
        return layout.ELEM_REF
    if _is_float_ty(ty):
        return layout.ELEM_FLOAT
    return layout.ELEM_PLAIN


class _FunctionIRGen:
    """Lowers one SIL function."""

    def __init__(self, silfn: sil.SILFunction, module_gen: "ModuleIRGen"):
        self.silfn = silfn
        self.gen = module_gen
        self.fn = ir.LIRFunction(
            symbol=silfn.symbol,
            throws=silfn.throws,
            ret_is_float=_is_float_ty(silfn.ret_type),
            has_return_value=silfn.ret_type not in (None, VOID),
            source_module=silfn.source_module,
        )
        self.temp_map: Dict[sil.Temp, ir.Operand] = {}
        self.alloca_map: Dict[sil.Temp, ir.Value] = {}
        self.cur: Optional[ir.LIRBlock] = None
        #: Instructions to prepend when a given SIL block starts (error-code
        #: extraction for try_apply error successors).
        self.block_prefix: Dict[str, List[ir.LIRInstr]] = {}
        self._trap_blocks: Dict[str, str] = {}
        self._entry_allocas: List[ir.LIRInstr] = []

    # -- plumbing ---------------------------------------------------------------

    def emit(self, instr: ir.LIRInstr) -> Optional[ir.Value]:
        assert self.cur is not None
        self.cur.instrs.append(instr)
        return instr.result

    def value_of(self, temp: sil.Temp) -> ir.Operand:
        if temp not in self.temp_map:
            raise LIRError(
                f"SIL temp %{temp} has no LIR value in {self.silfn.symbol}")
        return self.temp_map[temp]

    def _new(self) -> ir.Value:
        return self.fn.new_value()

    def _trap_block(self, reason: str) -> str:
        if reason not in self._trap_blocks:
            label = f"trap_{reason}"
            blk = self.fn.new_block(label)
            blk.instrs.append(ir.Trap(reason=reason))
            self._trap_blocks[reason] = label
        return self._trap_blocks[reason]

    # -- driver ------------------------------------------------------------------

    def run(self) -> ir.LIRFunction:
        # Parameters (closure context arrives as a trailing plain param).
        n_declared = len(self.silfn.param_types)
        for i, temp in enumerate(self.silfn.param_temps):
            value = self._new()
            self.fn.params.append(value)
            if i < n_declared:
                self.fn.param_is_float.append(
                    _is_float_ty(self.silfn.param_types[i]))
            else:
                self.fn.param_is_float.append(False)
            self.temp_map[temp] = value
        for silblk in self.silfn.blocks:
            self.fn.new_block(silblk.label)
        for silblk in self.silfn.blocks:
            self.cur = self.fn.block(silblk.label)
            for prefix_instr in self.block_prefix.get(silblk.label, ()):
                self.cur.instrs.append(prefix_instr)
            for instr in silblk.instrs:
                self._lower(instr)
        self._hoist_allocas()
        self._drop_unterminated_trailing_blocks()
        return self.fn

    def _hoist_allocas(self) -> None:
        """Move every Alloca to the entry block head (LLVM convention)."""
        allocas: List[ir.LIRInstr] = []
        for blk in self.fn.blocks:
            kept = []
            for instr in blk.instrs:
                if isinstance(instr, ir.Alloca):
                    allocas.append(instr)
                else:
                    kept.append(instr)
            blk.instrs = kept
        entry = self.fn.entry
        entry.instrs = allocas + entry.instrs

    def _drop_unterminated_trailing_blocks(self) -> None:
        for blk in self.fn.blocks:
            if blk.terminator is None:
                blk.instrs.append(ir.Unreachable())

    # -- instruction lowering -----------------------------------------------------

    def _lower(self, instr: sil.SILInstr) -> None:
        method = getattr(self, f"_lower_{type(instr).__name__}", None)
        if method is None:
            raise LIRError(f"IRGen cannot lower {type(instr).__name__}")
        method(instr)

    def _lower_ConstInt(self, instr: sil.ConstInt) -> None:
        self.temp_map[instr.result] = ir.Const(instr.value)

    def _lower_ConstFloat(self, instr: sil.ConstFloat) -> None:
        self.temp_map[instr.result] = ir.Const(instr.value, is_float=True)

    def _lower_ConstNil(self, instr: sil.ConstNil) -> None:
        self.temp_map[instr.result] = ir.Const(0)

    def _lower_ConstString(self, instr: sil.ConstString) -> None:
        symbol = self.gen.intern_string(instr.value)
        result = self._new()
        self.emit(ir.GlobalAddr(result=result, symbol=symbol))
        self.temp_map[instr.result] = result

    def _lower_AllocStack(self, instr: sil.AllocStack) -> None:
        value = self._new()
        self.emit(ir.Alloca(result=value, name=instr.name,
                            is_float=_is_float_ty(instr.ty)))
        self.temp_map[instr.result] = value

    def _lower_Load(self, instr: sil.Load) -> None:
        result = self._new()
        self.emit(ir.Load(result=result, ptr=self.value_of(instr.addr),
                          is_float=_is_float_ty(instr.ty)))
        self.temp_map[instr.result] = result

    def _lower_Store(self, instr: sil.Store) -> None:
        value = self.value_of(instr.value)
        is_float = isinstance(value, ir.Const) and value.is_float
        self.emit(ir.Store(value=value, ptr=self.value_of(instr.addr),
                           is_float=is_float))

    def _lower_AllocBox(self, instr: sil.AllocBox) -> None:
        kind = layout.ELEM_REF if instr.elem_is_ref else _elem_kind(instr.ty)
        result = self._new()
        self.emit(ir.Call(result=result, callee=names.SWIFT_ALLOC_BOX,
                          args=[ir.Const(kind)]))
        self.temp_map[instr.result] = result

    def _lower_BoxGet(self, instr: sil.BoxGet) -> None:
        addr = self._new()
        self.emit(ir.PtrAdd(result=addr, base=self.value_of(instr.box),
                            offset=ir.Const(layout.BOX_CONTENT)))
        result = self._new()
        self.emit(ir.Load(result=result, ptr=addr,
                          is_float=_is_float_ty(instr.ty)))
        self.temp_map[instr.result] = result

    def _lower_BoxSet(self, instr: sil.BoxSet) -> None:
        box = self.value_of(instr.box)
        value = self.value_of(instr.value)
        if instr.is_ref:
            self.emit(ir.Call(callee=names.SWIFT_BOX_SET_REF,
                              args=[box, value]))
            return
        addr = self._new()
        self.emit(ir.PtrAdd(result=addr, base=box,
                            offset=ir.Const(layout.BOX_CONTENT)))
        is_float = isinstance(value, ir.Const) and value.is_float
        self.emit(ir.Store(value=value, ptr=addr, is_float=is_float))

    def _lower_AllocRef(self, instr: sil.AllocRef) -> None:
        size = layout.object_size_for_fields(instr.num_fields)
        result = self._new()
        # The 3-argument allocation call of the paper's Listing 3.
        self.emit(ir.Call(result=result, callee=names.SWIFT_ALLOC_OBJECT,
                          args=[ir.Const(instr.type_id), ir.Const(size),
                                ir.Const(7)]))
        self.temp_map[instr.result] = result

    def _lower_FieldLoad(self, instr: sil.FieldLoad) -> None:
        addr = self._new()
        self.emit(ir.PtrAdd(result=addr, base=self.value_of(instr.obj),
                            offset=ir.Const(layout.class_field_offset(instr.index))))
        result = self._new()
        self.emit(ir.Load(result=result, ptr=addr,
                          is_float=_is_float_ty(instr.ty)))
        self.temp_map[instr.result] = result

    def _lower_FieldStore(self, instr: sil.FieldStore) -> None:
        addr = self._new()
        self.emit(ir.PtrAdd(result=addr, base=self.value_of(instr.obj),
                            offset=ir.Const(layout.class_field_offset(instr.index))))
        value = self.value_of(instr.value)
        if instr.is_ref:
            old = self._new()
            self.emit(ir.Load(result=old, ptr=addr))
            self.emit(ir.Store(value=value, ptr=addr))
            self.emit(ir.Call(callee=names.SWIFT_RELEASE, args=[old]))
        else:
            is_float = isinstance(value, ir.Const) and value.is_float
            self.emit(ir.Store(value=value, ptr=addr, is_float=is_float))

    # -- arrays --------------------------------------------------------------------

    def _array_element_addr(self, array: ir.Operand, index: ir.Operand,
                            buf_offset: int, count_offset: int) -> ir.Value:
        """Emit the inline bounds check and return the element address."""
        count_addr = self._new()
        self.emit(ir.PtrAdd(result=count_addr, base=array,
                            offset=ir.Const(count_offset)))
        count = self._new()
        self.emit(ir.Load(result=count, ptr=count_addr))
        cond = self._new()
        self.emit(ir.Cmp(result=cond, pred="u>=", lhs=index, rhs=count))
        ok_label = f"bounds_ok{self._new()}"
        trap = self._trap_block("bounds")
        self.emit(ir.CondBr(cond=cond, true_target=trap, false_target=ok_label))
        self.cur = self.fn.new_block(ok_label)
        buf_addr = self._new()
        self.emit(ir.PtrAdd(result=buf_addr, base=array,
                            offset=ir.Const(buf_offset)))
        buf = self._new()
        self.emit(ir.Load(result=buf, ptr=buf_addr))
        byte_off = self._new()
        self.emit(ir.BinOp(result=byte_off, op="<<", lhs=index, rhs=ir.Const(3)))
        addr = self._new()
        self.emit(ir.PtrAdd(result=addr, base=buf, offset=byte_off))
        return addr

    def _lower_ArrayNew(self, instr: sil.ArrayNew) -> None:
        count = self.value_of(instr.count)
        initial = self.value_of(instr.initial)
        if instr.elem_is_ref:
            kind = layout.ELEM_REF
        elif instr.elem_is_float:
            kind = layout.ELEM_FLOAT
        else:
            kind = layout.ELEM_PLAIN
        result = self._new()
        init_float = kind == layout.ELEM_FLOAT
        # Argument order (count, kind, initial) keeps the register
        # convention fixed: x0=count, x1=kind, initial in x2 or d0.
        self.emit(ir.Call(result=result, callee=names.SWIFT_ALLOC_ARRAY,
                          args=[count, ir.Const(kind), initial],
                          arg_is_float=(False, False, init_float)))
        self.temp_map[instr.result] = result

    def _lower_ArrayGet(self, instr: sil.ArrayGet) -> None:
        addr = self._array_element_addr(self.value_of(instr.array),
                                        self.value_of(instr.index),
                                        layout.ARRAY_BUF, layout.ARRAY_COUNT)
        result = self._new()
        self.emit(ir.Load(result=result, ptr=addr,
                          is_float=_is_float_ty(instr.ty)))
        self.temp_map[instr.result] = result

    def _lower_ArraySet(self, instr: sil.ArraySet) -> None:
        addr = self._array_element_addr(self.value_of(instr.array),
                                        self.value_of(instr.index),
                                        layout.ARRAY_BUF, layout.ARRAY_COUNT)
        value = self.value_of(instr.value)
        if instr.is_ref:
            old = self._new()
            self.emit(ir.Load(result=old, ptr=addr))
            self.emit(ir.Store(value=value, ptr=addr))
            self.emit(ir.Call(callee=names.SWIFT_RELEASE, args=[old]))
        else:
            is_float = isinstance(value, ir.Const) and value.is_float
            self.emit(ir.Store(value=value, ptr=addr, is_float=is_float))

    def _lower_ArrayCount(self, instr: sil.ArrayCount) -> None:
        addr = self._new()
        self.emit(ir.PtrAdd(result=addr, base=self.value_of(instr.array),
                            offset=ir.Const(layout.ARRAY_COUNT)))
        result = self._new()
        self.emit(ir.Load(result=result, ptr=addr))
        self.temp_map[instr.result] = result

    def _lower_ArrayAppend(self, instr: sil.ArrayAppend) -> None:
        self.emit(ir.Call(callee=names.SWIFT_ARRAY_APPEND,
                          args=[self.value_of(instr.array),
                                self.value_of(instr.value)]))

    def _lower_ArrayRemoveLast(self, instr: sil.ArrayRemoveLast) -> None:
        result = self._new()
        self.emit(ir.Call(result=result, callee=names.SWIFT_ARRAY_REMOVE_LAST,
                          args=[self.value_of(instr.array)],
                          ret_is_float=_is_float_ty(instr.ty)))
        self.temp_map[instr.result] = result

    # -- strings --------------------------------------------------------------------

    def _lower_StringLen(self, instr: sil.StringLen) -> None:
        addr = self._new()
        self.emit(ir.PtrAdd(result=addr, base=self.value_of(instr.value),
                            offset=ir.Const(layout.STRING_COUNT)))
        result = self._new()
        self.emit(ir.Load(result=result, ptr=addr))
        self.temp_map[instr.result] = result

    def _lower_StringIndex(self, instr: sil.StringIndex) -> None:
        addr = self._array_element_addr(self.value_of(instr.value),
                                        self.value_of(instr.index),
                                        layout.STRING_BUF, layout.STRING_COUNT)
        result = self._new()
        self.emit(ir.Load(result=result, ptr=addr))
        self.temp_map[instr.result] = result

    # -- ARC ------------------------------------------------------------------------

    def _lower_Retain(self, instr: sil.Retain) -> None:
        self.emit(ir.Call(callee=names.SWIFT_RETAIN,
                          args=[self.value_of(instr.value)]))

    def _lower_Release(self, instr: sil.Release) -> None:
        self.emit(ir.Call(callee=names.SWIFT_RELEASE,
                          args=[self.value_of(instr.value)]))

    # -- arithmetic --------------------------------------------------------------------

    def _lower_BinOp(self, instr: sil.BinOp) -> None:
        result = self._new()
        self.emit(ir.BinOp(result=result, op=instr.op,
                           lhs=self.value_of(instr.lhs),
                           rhs=self.value_of(instr.rhs),
                           is_float=instr.is_float))
        self.temp_map[instr.result] = result

    def _lower_CmpOp(self, instr: sil.CmpOp) -> None:
        result = self._new()
        self.emit(ir.Cmp(result=result, pred=instr.op,
                         lhs=self.value_of(instr.lhs),
                         rhs=self.value_of(instr.rhs),
                         operand_is_float=instr.operand_is_float))
        self.temp_map[instr.result] = result

    def _lower_NegOp(self, instr: sil.NegOp) -> None:
        result = self._new()
        self.emit(ir.Neg(result=result, value=self.value_of(instr.value),
                         is_float=instr.is_float))
        self.temp_map[instr.result] = result

    def _lower_NotOp(self, instr: sil.NotOp) -> None:
        result = self._new()
        self.emit(ir.Not(result=result, value=self.value_of(instr.value)))
        self.temp_map[instr.result] = result

    def _lower_Convert(self, instr: sil.Convert) -> None:
        result = self._new()
        self.emit(ir.Convert(result=result, kind=instr.kind,
                             value=self.value_of(instr.value)))
        self.temp_map[instr.result] = result

    # -- calls -----------------------------------------------------------------------

    def _lower_Apply(self, instr: sil.Apply) -> None:
        result = self._new() if instr.result is not None else None
        ret_is_float = False
        if instr.result is not None:
            ret_is_float = self.gen.ret_is_float(instr.callee)
        self.emit(ir.Call(result=result, callee=instr.callee,
                          args=[self.value_of(a) for a in instr.args],
                          ret_is_float=ret_is_float,
                          arg_is_float=self.gen.arg_floats(instr.callee,
                                                           len(instr.args))))
        if instr.result is not None:
            self.temp_map[instr.result] = result

    def _lower_ApplyClosure(self, instr: sil.ApplyClosure) -> None:
        closure = self.value_of(instr.closure)
        fn_addr = self._new()
        self.emit(ir.PtrAdd(result=fn_addr, base=closure,
                            offset=ir.Const(layout.CLOSURE_FN)))
        fnptr = self._new()
        self.emit(ir.Load(result=fnptr, ptr=fn_addr))
        result = self._new() if instr.result is not None else None
        args = [self.value_of(a) for a in instr.args] + [closure]
        self.emit(ir.Call(result=result, callee="", callee_value=fnptr,
                          args=args))
        if instr.result is not None:
            self.temp_map[instr.result] = result

    def _lower_MakeClosure(self, instr: sil.MakeClosure) -> None:
        fnaddr = self._new()
        self.emit(ir.FuncAddr(result=fnaddr, symbol=instr.fn_symbol))
        result = self._new()
        self.emit(ir.Call(result=result, callee=names.SWIFT_ALLOC_CLOSURE,
                          args=[fnaddr, ir.Const(len(instr.captures))]))
        for i, box in enumerate(instr.captures):
            box_val = self.value_of(box)
            self.emit(ir.Call(callee=names.SWIFT_RETAIN, args=[box_val]))
            slot = self._new()
            self.emit(ir.PtrAdd(result=slot, base=result,
                                offset=ir.Const(layout.closure_capture_offset(i))))
            self.emit(ir.Store(value=box_val, ptr=slot))
        self.temp_map[instr.result] = result

    def _lower_ApplyBuiltin(self, instr: sil.ApplyBuiltin) -> None:
        name = instr.builtin
        args = [self.value_of(a) for a in instr.args]
        if name == "assert":
            ok_label = f"assert_ok{self._new()}"
            trap = self._trap_block("assert")
            cond = self._new()
            self.emit(ir.Cmp(result=cond, pred="==", lhs=args[0],
                             rhs=ir.Const(0)))
            self.emit(ir.CondBr(cond=cond, true_target=trap,
                                false_target=ok_label))
            self.cur = self.fn.new_block(ok_label)
            return
        if name == "dealloc_partial":
            self.emit(ir.Call(callee=names.SWIFT_DEALLOC_PARTIAL, args=args))
            return
        if name == "string_concat":
            result = self._new()
            self.emit(ir.Call(result=result, callee=names.SWIFT_STRING_CONCAT,
                              args=args))
            self.temp_map[instr.result] = result
            return
        if name == "string_eq":
            result = self._new()
            self.emit(ir.Call(result=result, callee=names.SWIFT_STRING_EQ,
                              args=args))
            self.temp_map[instr.result] = result
            return
        if name in ("print_int", "print_double", "print_bool", "print_string"):
            self.emit(ir.Call(callee=name, args=args,
                              arg_is_float=(name == "print_double",)))
            return
        if name in names.MATH_FUNCS:
            runtime_name = names.MATH_FUNCS[name]
            float_args = name not in ("abs", "seedRandom")
            result = self._new() if instr.result is not None else None
            ret_float = name in ("sqrt", "exp", "log", "pow", "sin", "cos",
                                 "floor")
            self.emit(ir.Call(result=result, callee=runtime_name, args=args,
                              ret_is_float=ret_float,
                              arg_is_float=tuple(float_args for _ in args)))
            if instr.result is not None:
                self.temp_map[instr.result] = result
            return
        raise LIRError(f"unknown builtin {name!r}")

    # -- globals ------------------------------------------------------------------------

    def _lower_GlobalLoad(self, instr: sil.GlobalLoad) -> None:
        addr = self._new()
        self.emit(ir.GlobalAddr(result=addr, symbol=instr.symbol))
        if instr.is_object:
            self.temp_map[instr.result] = addr
            return
        result = self._new()
        self.emit(ir.Load(result=result, ptr=addr,
                          is_float=_is_float_ty(instr.ty)))
        self.temp_map[instr.result] = result

    def _lower_GlobalStore(self, instr: sil.GlobalStore) -> None:
        addr = self._new()
        self.emit(ir.GlobalAddr(result=addr, symbol=instr.symbol))
        value = self.value_of(instr.value)
        is_float = isinstance(value, ir.Const) and value.is_float
        self.emit(ir.Store(value=value, ptr=addr, is_float=is_float))

    # -- terminators ---------------------------------------------------------------------

    def _lower_Br(self, instr: sil.Br) -> None:
        self.emit(ir.Br(target=instr.target))

    def _lower_CondBr(self, instr: sil.CondBr) -> None:
        self.emit(ir.CondBr(cond=self.value_of(instr.cond),
                            true_target=instr.true_target,
                            false_target=instr.false_target))

    def _lower_Return(self, instr: sil.Return) -> None:
        if self.fn.throws:
            self.emit(ir.SetError(value=ir.Const(0)))
        if instr.value is None:
            self.emit(ir.Ret())
        else:
            self.emit(ir.Ret(value=self.value_of(instr.value),
                             is_float=self.fn.ret_is_float))

    def _lower_Throw(self, instr: sil.Throw) -> None:
        code = self.value_of(instr.code)
        raw = self._new()
        self.emit(ir.BinOp(result=raw, op="+", lhs=code, rhs=ir.Const(1)))
        self.emit(ir.SetError(value=raw))
        if self.fn.has_return_value:
            self.emit(ir.Ret(value=ir.Const(0), is_float=self.fn.ret_is_float))
        else:
            self.emit(ir.Ret())

    def _lower_TryApply(self, instr: sil.TryApply) -> None:
        result = self._new() if instr.result is not None else None
        args = [self.value_of(a) for a in instr.args]
        if instr.closure is not None:
            closure = self.value_of(instr.closure)
            fn_addr = self._new()
            self.emit(ir.PtrAdd(result=fn_addr, base=closure,
                                offset=ir.Const(layout.CLOSURE_FN)))
            fnptr = self._new()
            self.emit(ir.Load(result=fnptr, ptr=fn_addr))
            self.emit(ir.Call(result=result, callee="", callee_value=fnptr,
                              args=args + [closure], throws=True))
        else:
            self.emit(ir.Call(result=result, callee=instr.callee, args=args,
                              throws=True,
                              ret_is_float=self.gen.ret_is_float(instr.callee),
                              arg_is_float=self.gen.arg_floats(instr.callee,
                                                               len(args))))
        raw = self._new()
        self.emit(ir.ReadError(result=raw))
        cond = self._new()
        self.emit(ir.Cmp(result=cond, pred="!=", lhs=raw, rhs=ir.Const(0)))
        self.emit(ir.CondBr(cond=cond, true_target=instr.error_target,
                            false_target=instr.normal_target))
        # The error successor extracts code = raw - 1 at its head.
        err_val = self._new()
        self.block_prefix.setdefault(instr.error_target, []).append(
            ir.BinOp(result=err_val, op="-", lhs=raw, rhs=ir.Const(1)))
        self.temp_map[instr.error_result] = err_val
        if instr.result is not None:
            self.temp_map[instr.result] = result

    def _lower_Unreachable(self, instr: sil.Unreachable) -> None:
        self.emit(ir.Unreachable())


class ModuleIRGen:
    """Lowers one SIL module to LIR."""

    def __init__(self, sil_module: sil.SILModule,
                 signatures: Dict[str, sil.SILFunction]):
        self.sil_module = sil_module
        self.signatures = signatures
        self.module = ir.LIRModule(
            name=sil_module.name,
            entry_symbol=sil_module.entry_symbol,
            metadata={
                # Swift-compiler-style monolithic GC word (compiler id 5,
                # major 5, minor 2 packed) -- conflicts with clang's value
                # when llvm-link compares whole words (Section VI-2).
                "objc_gc": ("monolithic", (5 << 16) | (5 << 8) | 2),
                "objc_gc_attrs": {"mode": "none", "swift_abi": 5},
                "producer": "swiftlet",
            },
        )
        self._interned: Dict[str, str] = {}

    def intern_string(self, value: str) -> str:
        if value not in self._interned:
            symbol = f"{self.sil_module.name}::.str{len(self._interned)}"
            self._interned[value] = symbol
            self.module.globals.append(
                ir.LIRGlobal(symbol=symbol, init=value, is_object=True,
                             origin_module=self.sil_module.name))
        return self._interned[value]

    def ret_is_float(self, symbol: str) -> bool:
        silfn = self.signatures.get(symbol)
        if silfn is None:
            return False
        return _is_float_ty(silfn.ret_type)

    def arg_floats(self, symbol: str, nargs: int) -> Tuple[bool, ...]:
        silfn = self.signatures.get(symbol)
        if silfn is None:
            return tuple(False for _ in range(nargs))
        flags = [_is_float_ty(t) for t in silfn.param_types]
        while len(flags) < nargs:
            flags.append(False)
        return tuple(flags[:nargs])

    def lower_globals(self) -> None:
        """Lower the module's SIL globals into the LIR module."""
        for gbl in self.sil_module.globals:
            is_object = gbl.ty.is_ref()
            elem_float = False
            if isinstance(gbl.const_value, list) and gbl.const_value:
                elem_float = isinstance(gbl.const_value[0], float)
            self.module.globals.append(
                ir.LIRGlobal(symbol=gbl.symbol, init=gbl.const_value,
                             is_object=is_object, elem_is_float=elem_float,
                             origin_module=gbl.origin_module,
                             is_const=gbl.is_let))

    def preintern_strings(self) -> None:
        """Intern every string constant in whole-module lowering order.

        ``.strN`` numbering is first-use order across the module; the
        function-level cache assembles modules from a mix of cached and
        freshly lowered functions, so the table must be populated up
        front — in exactly the order a full :meth:`run` would produce —
        for the per-function lowerings to agree on symbols.
        """
        for silfn in self.sil_module.functions:
            for block in silfn.blocks:
                for instr in block.instrs:
                    if isinstance(instr, sil.ConstString):
                        self.intern_string(instr.value)

    def lower_function(self, silfn: sil.SILFunction) -> ir.LIRFunction:
        """Lower one SIL function and append it to the module."""
        fn = _FunctionIRGen(silfn, self).run()
        self.module.functions.append(fn)
        return fn

    def run(self) -> ir.LIRModule:
        self.lower_globals()
        for silfn in self.sil_module.functions:
            self.lower_function(silfn)
        return self.module


def generate_lir(sil_modules: List[sil.SILModule]) -> List[ir.LIRModule]:
    """Lower SIL modules to LIR (whole-program signature table shared)."""
    signatures: Dict[str, sil.SILFunction] = {}
    for sm in sil_modules:
        for fn in sm.functions:
            signatures[fn.symbol] = fn
    return [ModuleIRGen(sm, signatures).run() for sm in sil_modules]
