"""Trivial -Osize inliner.

Inlines calls to *tiny* functions: single basic block, non-throwing,
non-recursive, not address-taken, and at most ``MAX_INLINE_INSTRS``
instructions.  This is the size-safe subset every -Osize compiler inlines
(accessors, forwarding shims).

Exists mainly for the paper's future-work question #2 — how inlining
interacts with machine outlining: inlining *duplicates* code that the
outliner then re-deduplicates at finer granularity.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Set

from repro.lir import ir

MAX_INLINE_INSTRS = 8


def _inlinable(fn: ir.LIRFunction) -> bool:
    if fn.throws or len(fn.blocks) != 1:
        return False
    blk = fn.blocks[0]
    if len(blk.instrs) > MAX_INLINE_INSTRS + 1:  # +1 for the Ret
        return False
    term = blk.terminator
    if not isinstance(term, ir.Ret):
        return False
    for instr in blk.instrs:
        # Self-recursion guard and no nested error-convention traffic.
        if isinstance(instr, (ir.SetError, ir.ReadError)):
            return False
        if isinstance(instr, ir.Call) and instr.callee == fn.symbol:
            return False
    return True


def _address_taken(module: ir.LIRModule) -> Set[str]:
    taken: Set[str] = set()
    for fn in module.functions:
        for instr in fn.instructions():
            if isinstance(instr, ir.FuncAddr):
                taken.add(instr.symbol)
    return taken


def _splice(caller: ir.LIRFunction, call: ir.Call,
            callee: ir.LIRFunction) -> List[ir.LIRInstr]:
    """Clone the callee body with caller-fresh values; returns new instrs."""
    mapping: Dict[int, ir.Operand] = {}
    for param, arg in zip(callee.params, call.args):
        mapping[param] = arg
    out: List[ir.LIRInstr] = []
    ret_value: Optional[ir.Operand] = None
    for instr in callee.blocks[0].instrs:
        if isinstance(instr, ir.Ret):
            ret_value = instr.value
            if ir.is_value(ret_value) and ret_value in mapping:
                ret_value = mapping[ret_value]
            break
        clone = copy.deepcopy(instr)
        clone.replace_operands(mapping)
        if clone.result is not None:
            fresh = caller.new_value()
            mapping[clone.result] = fresh
            clone.result = fresh
        out.append(clone)
    if call.result is not None:
        if ret_value is None:
            ret_value = ir.Const(0)
        out.append(ir.Copy(result=call.result, value=ret_value,
                           is_float=call.ret_is_float))
    return out


def run_on_module(module: ir.LIRModule) -> Dict[str, int]:
    """Inline every eligible call site; returns metrics."""
    taken = _address_taken(module)
    candidates = {
        fn.symbol: fn for fn in module.functions
        if _inlinable(fn) and fn.symbol not in taken
        and fn.symbol != module.entry_symbol
    }
    sites = 0
    for fn in module.functions:
        for blk in fn.blocks:
            new_instrs: List[ir.LIRInstr] = []
            for instr in blk.instrs:
                if (
                    isinstance(instr, ir.Call)
                    and not instr.throws
                    and instr.callee in candidates
                    and instr.callee != fn.symbol
                ):
                    callee = candidates[instr.callee]
                    if len(callee.params) == len(instr.args):
                        new_instrs.extend(_splice(fn, instr, callee))
                        sites += 1
                        continue
                new_instrs.append(instr)
            blk.instrs = new_instrs
    # Now-unreferenced tiny functions are removed by globaldce later.
    return {"sites_inlined": sites, "inlinable_functions": len(candidates)}
