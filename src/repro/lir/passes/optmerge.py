"""Optimistic global function merging (the ROADMAP's "genuinely new
result"; cf. the optimistic global function merger the paper's team later
shipped for iOS).

Where :mod:`repro.lir.passes.mergefunctions` only folds *bit-identical*
bodies and :mod:`repro.lir.passes.fmsa` rewrites every call site, this pass
merges similar-but-not-identical functions without touching any caller:

1. bucket every function by a structural **similarity hash** — the SHA-256
   of its const-abstracted canonical form (:func:`fmsa.shape_key_and_consts`,
   so the two mergers can never disagree about "similar");
2. for each bucket, parameterise the differing immediates: one fresh
   ``__merged.N`` function carries the shared body with the diverging
   constants as extra trailing parameters, and every original symbol
   becomes a two-instruction **thunk** (``Call __merged.N(args..., c...);
   Ret``) so signatures, pointer identity, and the call graph are
   untouched;
3. **price the rewrite exactly**: the candidate bodies, the merged body,
   and the thunks are compiled with the real backend
   (:func:`repro.backend.llc.compile_function` on deep copies) and measured
   with the per-target :class:`~repro.target.spec.TargetSpec`
   (``function_text_bytes`` + ``function_metadata_bytes``).  A merge is
   kept only when it *strictly* shrinks text+metadata, so the pass can
   never grow the padded text section — optimistically propose, pessimally
   verify.

Because thunks preserve the original symbols, address-taken functions
(closure thunks) are mergeable here even though exact aliasing must skip
them.  Throwing functions are safe too: the error register is
caller-saved, so a thunk's ``Call; Ret`` forwards the callee's error state
to the original caller untouched.

The pass runs *last* in the whole-program -Osize stack — after
constprop/dce/simplifycfg — so the bodies it prices are exactly the bodies
llc will compile.
"""

from __future__ import annotations

import copy
import hashlib
from typing import Dict, List, Optional, Tuple

from repro.lir import ir
from repro.lir.passes import fmsa, mergefunctions
from repro.obs import trace

#: Same register-budget limits as FMSA (extra params ride in arg GPRs).
MAX_EXTRA_PARAMS = fmsa.MAX_EXTRA_PARAMS


def similarity_digest(key: Tuple) -> str:
    """Bucket id: SHA-256 over the canonical shape (stable across runs)."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


def _compiled_cost(fns: List[ir.LIRFunction], spec) -> int:
    """Exact text+metadata bytes these functions cost in the final image.

    Compiles deep copies through the real backend (phi elimination mutates
    its input) and measures with the target's own width/alignment model, so
    the price agrees byte-for-byte with what llc emits for the same LIR.
    """
    from repro.backend.llc import compile_function

    total = 0
    for fn in fns:
        mf = compile_function(copy.deepcopy(fn), spec)
        total += spec.function_text_bytes(mf) + spec.function_metadata_bytes
    return total


def _make_thunk(original: ir.LIRFunction, target_symbol: str,
                extra_consts: List[ir.Const]) -> ir.LIRFunction:
    """A forwarding wrapper keeping *original*'s symbol and signature."""
    thunk = ir.LIRFunction(symbol=original.symbol,
                           ret_is_float=original.ret_is_float,
                           has_return_value=original.has_return_value,
                           throws=original.throws,
                           source_module=original.source_module)
    thunk.params = [thunk.new_value() for _ in original.params]
    thunk.param_is_float = list(original.param_is_float)
    entry = thunk.new_block("entry")
    result = thunk.new_value() if original.has_return_value else None
    entry.instrs.append(ir.Call(
        result=result,
        callee=target_symbol,
        args=list(thunk.params) + list(extra_consts),
        throws=original.throws,
        ret_is_float=original.ret_is_float,
        arg_is_float=tuple(original.param_is_float)
        + tuple(c.is_float for c in extra_consts)))
    # No explicit error plumbing: the error register is caller-saved, so
    # the callee's success/throw state flows through the thunk's Ret to
    # the original caller unmodified.
    entry.instrs.append(ir.Ret(value=result,
                               is_float=original.ret_is_float))
    return thunk


def _fresh_symbol(existing: set, prefix: str, counter: int) -> Tuple[str, int]:
    while True:
        symbol = f"{prefix}__merged.{counter}"
        counter += 1
        if symbol not in existing:
            return symbol, counter


def run_on_module(module: ir.LIRModule, target=None,
                  symbol_prefix: str = "") -> Dict[str, int]:
    """Merge similar functions in *module*; returns the stats dict."""
    from repro.target import get_target

    spec = get_target(target)
    report: Dict[str, int] = {
        "functions_merged": 0,       # originals rewritten (aliased/thunked)
        "exact_merged": 0,           # phase 1: bit-identical, aliased away
        "parameterized_merged": 0,   # phase 2: const-divergent, thunked
        "thunks_created": 0,
        "merged_bodies_created": 0,
        "groups_considered": 0,
        "rejected_unprofitable": 0,
        "instrs_removed": 0,
        "bytes_saved": 0,            # phase 2 only, exact per the target
    }

    # -- Phase 1: exact dedup (the conservative pass, shared canonical key).
    exact = mergefunctions.run_on_module(module)
    report["exact_merged"] = exact["functions_merged"]
    report["functions_merged"] += exact["functions_merged"]
    report["instrs_removed"] += exact["instrs_removed"]

    # -- Phase 2: similarity buckets over the survivors.
    groups: Dict[str, List[Tuple[ir.LIRFunction, Tuple,
                                 List[ir.Const]]]] = {}
    for fn in module.functions:
        if fn.symbol == module.entry_symbol:
            continue
        key, consts = fmsa.shape_key_and_consts(fn)
        groups.setdefault(similarity_digest(key), []).append(
            (fn, key, consts))

    existing = {fn.symbol for fn in module.functions}
    thunk_for: Dict[str, ir.LIRFunction] = {}
    merged_bodies: List[ir.LIRFunction] = []
    counter = 0
    for bucket in groups.values():
        # A digest collision across different shapes would merge garbage;
        # split the bucket by true key equality before trusting it.
        by_key: Dict[Tuple, List[Tuple[ir.LIRFunction, List[ir.Const]]]] = {}
        for fn, key, consts in bucket:
            by_key.setdefault(key, []).append((fn, consts))
        for members in by_key.values():
            if len(members) < 2:
                continue
            report["groups_considered"] += 1
            rep_fn, rep_consts = members[0]
            nconsts = len(rep_consts)
            if any(len(c) != nconsts for _, c in members):
                continue  # belt and braces; the key pins the const count
            diff = [
                i for i in range(nconsts)
                if len({mergefunctions.const_token(c[i])
                        for _, c in members}) > 1
            ]
            if len(diff) > MAX_EXTRA_PARAMS:
                continue
            if len(rep_fn.params) + len(diff) > spec.cc.max_reg_args:
                continue
            if any(rep_consts[i].is_float for i in diff):
                continue  # extra params stay integer-class, like FMSA

            old_cost = _compiled_cost([fn for fn, _ in members], spec)
            if diff:
                # One fresh body, every original becomes a thunk.
                symbol, counter = _fresh_symbol(existing, symbol_prefix,
                                                counter)
                merged = copy.deepcopy(rep_fn)
                merged.symbol = symbol
                new_params = fmsa._rewrite_consts_as_params(merged, diff)
                merged.params.extend(new_params)
                merged.param_is_float.extend(False for _ in new_params)
                thunks = [
                    _make_thunk(fn, symbol, [consts[i] for i in diff])
                    for fn, consts in members
                ]
                new_cost = _compiled_cost([merged] + thunks, spec)
                if new_cost >= old_cost:
                    report["rejected_unprofitable"] += 1
                    continue
                existing.add(symbol)
                merged_bodies.append(merged)
                report["merged_bodies_created"] += 1
                for (fn, _), thunk in zip(members, thunks):
                    thunk_for[fn.symbol] = thunk
                    report["instrs_removed"] += (fn.num_instrs
                                                 - thunk.num_instrs)
                report["thunks_created"] += len(thunks)
                report["parameterized_merged"] += len(members)
            else:
                # Identical bodies that exact aliasing had to skip
                # (address-taken): keep the representative, thunk the rest.
                thunks = [_make_thunk(fn, rep_fn.symbol, [])
                          for fn, _ in members[1:]]
                new_cost = _compiled_cost([rep_fn] + thunks, spec)
                if new_cost >= old_cost:
                    report["rejected_unprofitable"] += 1
                    continue
                for (fn, _), thunk in zip(members[1:], thunks):
                    thunk_for[fn.symbol] = thunk
                    report["instrs_removed"] += (fn.num_instrs
                                                 - thunk.num_instrs)
                report["thunks_created"] += len(thunks)
            report["functions_merged"] += len(thunks)
            report["bytes_saved"] += old_cost - new_cost

    if thunk_for or merged_bodies:
        module.functions = [thunk_for.get(fn.symbol, fn)
                            for fn in module.functions] + merged_bodies

    metrics = trace.metrics()
    metrics.inc("optmerge.functions_merged", report["functions_merged"])
    metrics.inc("optmerge.thunks_created", report["thunks_created"])
    metrics.inc("optmerge.bytes_saved", report["bytes_saved"])
    metrics.inc("optmerge.rejected_unprofitable",
                report["rejected_unprofitable"])
    return report
