"""MergeFunctions (Table I baseline): deduplicate structurally identical
functions.

Canonicalises each function (local value numbering, block indices for
labels, constants included verbatim) and keeps one representative per
equivalence class, rewriting every direct call.  Functions whose address is
taken (closure thunks) are kept: aliasing them would change function
pointer identity.

As the paper reports, exact-duplicate functions are rare in practice
(< 1% size saving) — near-misses differ in a constant or a register.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.lir import ir


def const_token(const: ir.Const) -> Tuple:
    """Collision-free canonical token for an immediate.

    Python's ``==``/``hash`` conflate values that the backend materialises
    differently: ``0.0 == -0.0``, ``True == 1``, ``2.0 == 2``.  Two
    functions differing only in such a constant are *not* equivalent (the
    sign of a printed float zero is observable), so the canonical key must
    separate them.  Floats are keyed by their IEEE-754 bit pattern, which
    also distinguishes NaN payloads; bools and ints get distinct tags.
    """
    value = const.value
    if isinstance(value, bool):
        return ("b", value, const.is_float)
    if isinstance(value, float):
        return ("f", struct.pack(">d", value), const.is_float)
    return ("i", value, const.is_float)


def canonical_key(fn: ir.LIRFunction) -> Tuple:
    """Structure-sensitive canonical form of a function body."""
    value_ids: Dict[int, int] = {}

    def vid(value: int) -> int:
        if value not in value_ids:
            value_ids[value] = len(value_ids)
        return value_ids[value]

    block_index = {blk.label: i for i, blk in enumerate(fn.blocks)}

    def canon_op(op: ir.Operand):
        if ir.is_value(op):
            return ("v", vid(op))
        if isinstance(op, ir.Const):
            return ("c",) + const_token(op)
        if isinstance(op, ir.GlobalRef):
            return ("g", op.symbol)
        if isinstance(op, ir.FuncRef):
            return ("f", op.symbol)
        return ("?", repr(op))

    for p in fn.params:
        vid(p)
    body = []
    for blk in fn.blocks:
        row = [block_index[blk.label]]
        for instr in blk.instrs:
            entry = [type(instr).__name__]
            if instr.result is not None:
                entry.append(("def", vid(instr.result)))
            for name, value in sorted(vars(instr).items()):
                if name == "result":
                    continue
                if name in ("ptr", "value", "lhs", "rhs", "cond", "base",
                            "offset", "callee_value"):
                    if value is None:
                        entry.append((name, None))
                    else:
                        entry.append((name, canon_op(value)))
                elif name == "args":
                    entry.append(("args", tuple(canon_op(a) for a in value)))
                elif name == "incomings":
                    entry.append(("inc", tuple(
                        (block_index.get(lbl, -1), canon_op(op))
                        for lbl, op in value)))
                elif name in ("target", "true_target", "false_target"):
                    entry.append((name, block_index.get(value, -1)))
                elif name == "callee":
                    # Call-target identity, spelled out rather than left to
                    # the generic fallback: rewriting callees is exactly
                    # what merging does, so bodies calling different
                    # functions must never share an equivalence class.
                    entry.append(("call-target", value))
                else:
                    # Remaining fields are instruction flags and opcode
                    # selectors (op/pred/kind/is_float/throws/symbol/...):
                    # included verbatim so no flag is ever abstracted away.
                    entry.append((name, value))
            row.append(tuple(entry))
        body.append(tuple(row))
    return (len(fn.params), tuple(fn.param_is_float), fn.throws,
            fn.has_return_value, fn.ret_is_float, tuple(body))


def _address_taken(module: ir.LIRModule) -> set:
    taken = set()
    for fn in module.functions:
        for instr in fn.instructions():
            if isinstance(instr, ir.FuncAddr):
                taken.add(instr.symbol)
    return taken


def run_on_module(module: ir.LIRModule) -> Dict[str, int]:
    taken = _address_taken(module)
    groups: Dict[Tuple, List[ir.LIRFunction]] = {}
    for fn in module.functions:
        if fn.symbol == module.entry_symbol or fn.symbol in taken:
            continue
        groups.setdefault(canonical_key(fn), []).append(fn)

    alias: Dict[str, str] = {}
    removed_instrs = 0
    for members in groups.values():
        if len(members) < 2:
            continue
        keep = members[0]
        for dup in members[1:]:
            alias[dup.symbol] = keep.symbol
            removed_instrs += dup.num_instrs
    if alias:
        module.functions = [fn for fn in module.functions
                            if fn.symbol not in alias]
        for fn in module.functions:
            for instr in fn.instructions():
                if isinstance(instr, ir.Call) and instr.callee in alias:
                    instr.callee = alias[instr.callee]
    return {"functions_merged": len(alias),
            "instrs_removed": removed_instrs}
