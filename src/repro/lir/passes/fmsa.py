"""FMSA-style function merging (Table I baseline).

"Function merging by sequence alignment" merges *similar* (not identical)
functions.  This implementation covers the dominant case: functions whose
bodies are identical up to integer/float immediates.  Each group is merged
into one parameterised function; the differing immediates become extra
arguments supplied by (rewritten) callers.

Like the paper observed, this buys a couple of percent at real compile-time
cost; sub-instruction repeats remain invisible to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lir import ir
from repro.lir.passes.mergefunctions import _address_taken, const_token

#: Extra const parameters must fit the register-argument budget.
MAX_EXTRA_PARAMS = 4
MAX_TOTAL_PARAMS = 8


def shape_key_and_consts(fn: ir.LIRFunction) -> Tuple[Tuple, List[ir.Const]]:
    """Canonical form with immediates abstracted out."""
    value_ids: Dict[int, int] = {}

    def vid(value: int) -> int:
        if value not in value_ids:
            value_ids[value] = len(value_ids)
        return value_ids[value]

    block_index = {blk.label: i for i, blk in enumerate(fn.blocks)}
    consts: List[ir.Const] = []

    def canon_op(op: ir.Operand):
        if ir.is_value(op):
            return ("v", vid(op))
        if isinstance(op, ir.Const):
            consts.append(op)
            return ("C", len(consts) - 1, op.is_float)
        if isinstance(op, ir.GlobalRef):
            return ("g", op.symbol)
        if isinstance(op, ir.FuncRef):
            return ("f", op.symbol)
        return ("?", repr(op))

    for p in fn.params:
        vid(p)
    body = []
    for blk in fn.blocks:
        row = [block_index[blk.label]]
        for instr in blk.instrs:
            entry = [type(instr).__name__]
            if instr.result is not None:
                entry.append(("def", vid(instr.result)))
            for name, value in sorted(vars(instr).items()):
                if name == "result":
                    continue
                if name in ("ptr", "value", "lhs", "rhs", "cond", "base",
                            "offset", "callee_value"):
                    entry.append((name, None if value is None
                                  else canon_op(value)))
                elif name == "args":
                    entry.append(("args", tuple(canon_op(a) for a in value)))
                elif name == "incomings":
                    entry.append(("inc", tuple(
                        (block_index.get(lbl, -1), canon_op(op))
                        for lbl, op in value)))
                elif name in ("target", "true_target", "false_target"):
                    entry.append((name, block_index.get(value, -1)))
                else:
                    entry.append((name, value))
            row.append(tuple(entry))
        body.append(tuple(row))
    key = (len(fn.params), tuple(fn.param_is_float), fn.throws,
           fn.has_return_value, fn.ret_is_float, tuple(body))
    return key, consts


def _rewrite_consts_as_params(fn: ir.LIRFunction,
                              diff_positions: List[int]) -> List[ir.Value]:
    """Replace the const at each diff position with a fresh parameter."""
    new_params: List[ir.Value] = []
    position_to_param: Dict[int, ir.Value] = {}
    for pos in diff_positions:
        value = fn.new_value()
        position_to_param[pos] = value
        new_params.append(value)

    counter = [0]

    def rewrite_op(op: ir.Operand) -> ir.Operand:
        if isinstance(op, ir.Const):
            pos = counter[0]
            counter[0] += 1
            if pos in position_to_param:
                return position_to_param[pos]
        return op

    for blk in fn.blocks:
        for instr in blk.instrs:
            for name in ("ptr", "value", "lhs", "rhs", "cond", "base",
                         "offset", "callee_value"):
                if hasattr(instr, name):
                    value = getattr(instr, name)
                    if value is not None:
                        setattr(instr, name, rewrite_op(value))
            if hasattr(instr, "args"):
                instr.args = [rewrite_op(a) for a in instr.args]
            if hasattr(instr, "incomings"):
                instr.incomings = [(lbl, rewrite_op(op))
                                   for lbl, op in instr.incomings]
    return new_params


def run_on_module(module: ir.LIRModule) -> Dict[str, int]:
    taken = _address_taken(module)
    groups: Dict[Tuple, List[Tuple[ir.LIRFunction, List[ir.Const]]]] = {}
    for fn in module.functions:
        if fn.symbol == module.entry_symbol or fn.symbol in taken:
            continue
        key, consts = shape_key_and_consts(fn)
        groups.setdefault(key, []).append((fn, consts))

    alias: Dict[str, Tuple[str, List[ir.Const]]] = {}
    merged_count = 0
    removed_instrs = 0
    for members in groups.values():
        if len(members) < 2:
            continue
        rep_fn, rep_consts = members[0]
        nconsts = len(rep_consts)
        if any(len(c) != nconsts for _, c in members):
            continue  # float/int shape mismatch guard
        # const_token, not (value, is_float): Python equality would fold
        # 0.0/-0.0 and True/1 into "identical", silently dropping a real
        # difference instead of parameterising it.
        diff = [
            i for i in range(nconsts)
            if len({const_token(c[i]) for _, c in members}) > 1
        ]
        if not diff:
            continue  # identical: MergeFunctions territory
        if len(diff) > MAX_EXTRA_PARAMS:
            continue
        if len(rep_fn.params) + len(diff) > MAX_TOTAL_PARAMS:
            continue
        if any(rep_consts[i].is_float for i in diff):
            continue  # keep extra params integer-class for simplicity
        new_params = _rewrite_consts_as_params(rep_fn, diff)
        rep_fn.params.extend(new_params)
        rep_fn.param_is_float.extend(False for _ in new_params)
        for member_fn, member_consts in members:
            extra = [member_consts[i] for i in diff]
            alias[member_fn.symbol] = (rep_fn.symbol, extra)
            if member_fn is not rep_fn:
                removed_instrs += member_fn.num_instrs
        merged_count += len(members) - 1

    if alias:
        keep_reps = {target for target, _ in alias.values()}
        module.functions = [
            fn for fn in module.functions
            if fn.symbol not in alias or fn.symbol in keep_reps
        ]
        for fn in module.functions:
            for instr in fn.instructions():
                if isinstance(instr, ir.Call) and instr.callee in alias:
                    target, extra = alias[instr.callee]
                    instr.callee = target
                    instr.args = list(instr.args) + list(extra)
                    instr.arg_is_float = tuple(instr.arg_is_float) + tuple(
                        False for _ in extra)
    return {"functions_merged": merged_count,
            "instrs_removed": removed_instrs}
