"""Global DCE: strip functions unreachable from the entry point.

Models the dead-code-removal infrastructure Uber already ran before this
paper's work (§II-B); app builds keep only what main can reach, directly or
through an address-taken closure.

Two reachability passes live here, one per representation:

* :func:`run_on_module` — the early LIR pass (``BuildConfig.global_dce``)
  over the llvm-link-merged module, whole-program pipeline only;
* :func:`strip_program` — link-time whole-program stripping
  (``BuildConfig.strip = "program"``) over the *machine* modules, right
  before the system link.  It works in both pipeline shapes and sees the
  final code — outlined bodies, merged thunks — so it also removes
  machine functions orphaned by later passes, which the LIR pass can
  never see.

Safety argument for the machine-level pass: every way control can reach a
function body in this ISA names its symbol in an instruction operand —
direct calls (``BL @f``), tail calls (``B @f``), and address
materialisation (``ADRP``/``ADDlo`` pairs, the only lowering of
``FuncAddr``; indirect calls ``BLR`` always go through one).  Data
globals hold only ints/floats/strings, never code addresses.  So the
closure of "symbols named by reachable instructions" over-approximates
reachability, and removing everything outside it cannot change any
execution from the entry point.  Throwing functions need no special
case: they are only entered via their call sites, which are edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.lir import ir


def run_on_module(module: ir.LIRModule) -> int:
    """Returns the number of functions removed."""
    if module.entry_symbol is None:
        return 0
    by_symbol: Dict[str, ir.LIRFunction] = {
        fn.symbol: fn for fn in module.functions
    }
    if module.entry_symbol not in by_symbol:
        return 0
    reachable: Set[str] = set()
    work = [module.entry_symbol]
    while work:
        symbol = work.pop()
        if symbol in reachable or symbol not in by_symbol:
            continue
        reachable.add(symbol)
        for instr in by_symbol[symbol].instructions():
            if isinstance(instr, ir.Call) and instr.callee:
                work.append(instr.callee)
            elif isinstance(instr, ir.FuncAddr):
                work.append(instr.symbol)
    removed = len(module.functions) - len(
        [fn for fn in module.functions if fn.symbol in reachable])
    module.functions = [fn for fn in module.functions
                        if fn.symbol in reachable]
    return removed


# --- link-time whole-program stripping (machine level) -----------------------


@dataclass
class StripStats:
    """What :func:`strip_program` removed."""

    #: Total functions / padded __text bytes removed across all modules.
    functions_removed: int = 0
    bytes_removed: int = 0
    #: module name -> {"functions": n, "bytes": b} for modules that lost
    #: at least one function.
    per_module: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Names of the removed functions (deterministic order; tests and the
    #: CLI report read this).
    removed: List[str] = field(default_factory=list)


def strip_program(machine_modules, entry_symbol, spec) -> StripStats:
    """Remove machine functions unreachable from *entry_symbol*.

    Mutates *machine_modules* in place and returns a :class:`StripStats`.
    Reachability walks every instruction operand of every reached
    function: any :class:`~repro.isa.instructions.Sym` naming a function
    is an edge (covers ``BL``, tail-call ``B``, and ``ADRP``/``ADDlo``
    address-taken references — see the module docstring for why this is
    complete).  Runtime symbols are not machine functions and simply
    never match.  A program with no (or an unknown) entry symbol is left
    untouched — a library build has no root to strip from.

    *spec* is a :class:`~repro.target.spec.TargetSpec`; removed bytes are
    priced with :meth:`~repro.target.spec.TargetSpec.function_text_bytes`
    (alignment-padded), the same arithmetic the linker lays out.
    """
    from repro.isa.instructions import Sym

    stats = StripStats()
    by_name = {}
    for module in machine_modules:
        for fn in module.functions:
            by_name[fn.name] = fn
    if entry_symbol is None or entry_symbol not in by_name:
        return stats
    reachable: Set[str] = set()
    work = [entry_symbol]
    while work:
        name = work.pop()
        if name in reachable:
            continue
        reachable.add(name)
        for instr in by_name[name].instructions():
            for op in instr.operands:
                if isinstance(op, Sym) and op.name in by_name:
                    if op.name not in reachable:
                        work.append(op.name)
    for module in machine_modules:
        dead = [fn for fn in module.functions if fn.name not in reachable]
        if not dead:
            continue
        removed_bytes = sum(spec.function_text_bytes(fn) for fn in dead)
        stats.per_module[module.name] = {
            "functions": len(dead), "bytes": removed_bytes}
        stats.functions_removed += len(dead)
        stats.bytes_removed += removed_bytes
        stats.removed.extend(fn.name for fn in dead)
        module.functions = [fn for fn in module.functions
                            if fn.name in reachable]
    return stats
