"""Global DCE: strip functions unreachable from the entry point.

Models the dead-code-removal infrastructure Uber already ran before this
paper's work (§II-B); app builds keep only what main can reach, directly or
through an address-taken closure.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.lir import ir


def run_on_module(module: ir.LIRModule) -> int:
    """Returns the number of functions removed."""
    if module.entry_symbol is None:
        return 0
    by_symbol: Dict[str, ir.LIRFunction] = {
        fn.symbol: fn for fn in module.functions
    }
    if module.entry_symbol not in by_symbol:
        return 0
    reachable: Set[str] = set()
    work = [module.entry_symbol]
    while work:
        symbol = work.pop()
        if symbol in reachable or symbol not in by_symbol:
            continue
        reachable.add(symbol)
        for instr in by_symbol[symbol].instructions():
            if isinstance(instr, ir.Call) and instr.callee:
                work.append(instr.callee)
            elif isinstance(instr, ir.FuncAddr):
                work.append(instr.symbol)
    removed = len(module.functions) - len(
        [fn for fn in module.functions if fn.symbol in reachable])
    module.functions = [fn for fn in module.functions
                        if fn.symbol in reachable]
    return removed
