"""CFG simplification: remove unreachable blocks, thread trivial jumps, and
merge single-predecessor/single-successor block pairs.

Runs after mem2reg, so it must keep phi incoming labels consistent.
"""

from __future__ import annotations

from typing import Dict

from repro.lir import ir
from repro.lir.cfg import reachable_blocks


def run_on_function(fn: ir.LIRFunction) -> int:
    changed_total = 0
    while True:
        changed = 0
        changed += _remove_unreachable(fn)
        changed += _thread_empty_blocks(fn)
        changed += _merge_linear_pairs(fn)
        changed_total += changed
        if not changed:
            return changed_total


def _remove_unreachable(fn: ir.LIRFunction) -> int:
    keep = set(reachable_blocks(fn))
    dropped = [blk.label for blk in fn.blocks if blk.label not in keep]
    if not dropped:
        return 0
    fn.blocks = [blk for blk in fn.blocks if blk.label in keep]
    for blk in fn.blocks:
        for phi in blk.phis():
            phi.incomings = [(lbl, op) for lbl, op in phi.incomings
                             if lbl in keep]
    return len(dropped)


def _thread_empty_blocks(fn: ir.LIRFunction) -> int:
    """Forward one Br-only block per call (the fixpoint loop iterates).

    Handling one block at a time with fresh predecessor information keeps
    phi incoming labels consistent even across forwarding chains.
    """
    preds = fn.predecessors()
    for blk in fn.blocks[1:]:
        if not (len(blk.instrs) == 1 and isinstance(blk.instrs[0], ir.Br)):
            continue
        target_label = blk.instrs[0].target
        if target_label == blk.label:
            continue
        blk_preds = preds.get(blk.label, [])
        if not blk_preds:
            continue
        target = fn.block(target_label)
        if target.phis():
            # After retargeting, target's preds gain blk's preds in place of
            # blk.  Bail out if that would create duplicate-pred phi edges
            # with conflicting values.
            target_pred_set = set(preds.get(target_label, []))
            if any(p in target_pred_set for p in blk_preds):
                continue
            for phi in target.phis():
                new_in = []
                for lbl, op in phi.incomings:
                    if lbl == blk.label:
                        for p in blk_preds:
                            new_in.append((p, op))
                    else:
                        new_in.append((lbl, op))
                phi.incomings = new_in
        # Retarget every predecessor terminator.
        for pred_label in blk_preds:
            term = fn.block(pred_label).terminator
            if isinstance(term, ir.Br) and term.target == blk.label:
                term.target = target_label
            elif isinstance(term, ir.CondBr):
                if term.true_target == blk.label:
                    term.true_target = target_label
                if term.false_target == blk.label:
                    term.false_target = target_label
        _remove_unreachable(fn)
        return 1
    return 0


def _merge_linear_pairs(fn: ir.LIRFunction) -> int:
    """Merge B into A when A ends in Br B and B has exactly one predecessor."""
    changed = 0
    preds = fn.predecessors()
    merged = set()
    for blk in list(fn.blocks):
        if blk.label in merged:
            continue
        term = blk.terminator
        if not isinstance(term, ir.Br):
            continue
        target_label = term.target
        if target_label == blk.label or target_label == fn.entry.label:
            continue
        if len(preds.get(target_label, [])) != 1:
            continue
        target = fn.block(target_label)
        if target.phis():
            # Single-pred phis fold to copies.
            new_head = []
            for instr in target.instrs:
                if isinstance(instr, ir.Phi):
                    value: ir.Operand = ir.Const(0)
                    for lbl, op in instr.incomings:
                        if lbl == blk.label:
                            value = op
                            break
                    else:
                        if instr.incomings:
                            value = instr.incomings[0][1]
                    new_head.append(
                        ir.Copy(result=instr.result, value=value,
                                is_float=instr.is_float))
                else:
                    break
            target.instrs = new_head + target.instrs[len(new_head):]
            target.instrs = [i for i in target.instrs
                             if not isinstance(i, ir.Phi)]
        blk.instrs = blk.instrs[:-1] + target.instrs
        # Successor phis referring to the merged block must now name blk.
        for succ_label in target.successors():
            try:
                succ = fn.block(succ_label)
            except Exception:
                continue
            for phi in succ.phis():
                phi.incomings = [
                    (blk.label if lbl == target_label else lbl, op)
                    for lbl, op in phi.incomings
                ]
        fn.blocks = [b for b in fn.blocks if b.label != target_label]
        merged.add(target_label)
        changed += 1
        preds = fn.predecessors()
    return changed


def run_on_module(module: ir.LIRModule) -> int:
    return sum(run_on_function(fn) for fn in module.functions)
