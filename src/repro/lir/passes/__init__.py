"""LIR optimization passes."""
