"""Local constant folding and copy propagation.

A deliberately simple -Osize-style cleanup: folds arithmetic on constant
operands, propagates copies, and simplifies conditional branches on constant
conditions.  Runs to a fixed point per function.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.lir import ir

_INT_MASK = (1 << 64) - 1


def _wrap(value: int) -> int:
    value &= _INT_MASK
    if value >= 1 << 63:
        value -= 1 << 64
    return value


def _fold_binop(op: str, lhs, rhs, is_float: bool):
    try:
        if is_float:
            return {
                "+": lambda: lhs + rhs,
                "-": lambda: lhs - rhs,
                "*": lambda: lhs * rhs,
                "/": lambda: lhs / rhs if rhs != 0.0 else None,
            }.get(op, lambda: None)()
        return {
            "+": lambda: _wrap(lhs + rhs),
            "-": lambda: _wrap(lhs - rhs),
            "*": lambda: _wrap(lhs * rhs),
            "/": lambda: _wrap(_int_div(lhs, rhs)) if rhs != 0 else None,
            "%": lambda: _wrap(_int_rem(lhs, rhs)) if rhs != 0 else None,
            "&": lambda: _wrap(lhs & rhs),
            "|": lambda: _wrap(lhs | rhs),
            "^": lambda: _wrap(lhs ^ rhs),
            "<<": lambda: _wrap(lhs << (rhs & 63)),
            ">>": lambda: _wrap(lhs >> (rhs & 63)),
        }.get(op, lambda: None)()
    except (OverflowError, ZeroDivisionError):  # pragma: no cover
        return None


def _int_div(a: int, b: int) -> int:
    """C-style truncating division (AArch64 SDIV semantics)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _int_rem(a: int, b: int) -> int:
    return a - _int_div(a, b) * b


def _fold_cmp(pred: str, lhs, rhs) -> Optional[int]:
    if pred == "u>=":
        lhs &= _INT_MASK
        rhs &= _INT_MASK
        return 1 if lhs >= rhs else 0
    if pred == "u<":
        lhs &= _INT_MASK
        rhs &= _INT_MASK
        return 1 if lhs < rhs else 0
    return {
        "==": lambda: 1 if lhs == rhs else 0,
        "!=": lambda: 1 if lhs != rhs else 0,
        "<": lambda: 1 if lhs < rhs else 0,
        "<=": lambda: 1 if lhs <= rhs else 0,
        ">": lambda: 1 if lhs > rhs else 0,
        ">=": lambda: 1 if lhs >= rhs else 0,
    }.get(pred, lambda: None)()


def fold_function(fn: ir.LIRFunction) -> int:
    """One folding sweep; returns the number of instructions simplified."""
    changed = 0
    replacement: Dict[int, ir.Operand] = {}
    for blk in fn.blocks:
        new_instrs = []
        for instr in blk.instrs:
            instr.replace_operands(replacement)
            folded: Optional[ir.Operand] = None
            if isinstance(instr, ir.BinOp):
                lhs, rhs = instr.lhs, instr.rhs
                if isinstance(lhs, ir.Const) and isinstance(rhs, ir.Const):
                    value = _fold_binop(instr.op, lhs.value, rhs.value,
                                        instr.is_float)
                    if value is not None:
                        folded = ir.Const(value, is_float=instr.is_float)
                elif isinstance(rhs, ir.Const) and rhs.value == 0 and \
                        instr.op in ("+", "-", "|", "^", "<<", ">>") and \
                        not instr.is_float:
                    folded = lhs
            elif isinstance(instr, ir.Cmp):
                if isinstance(instr.lhs, ir.Const) and isinstance(instr.rhs, ir.Const):
                    value = _fold_cmp(instr.pred, instr.lhs.value,
                                      instr.rhs.value)
                    if value is not None:
                        folded = ir.Const(value)
            elif isinstance(instr, ir.Copy):
                folded = instr.value
            elif isinstance(instr, ir.Neg):
                if isinstance(instr.value, ir.Const):
                    folded = ir.Const(-instr.value.value,
                                      is_float=instr.is_float)
            elif isinstance(instr, ir.Not):
                if isinstance(instr.value, ir.Const):
                    folded = ir.Const(0 if instr.value.value else 1)
            elif isinstance(instr, ir.Convert):
                if isinstance(instr.value, ir.Const):
                    if instr.kind == "int_to_double":
                        folded = ir.Const(float(instr.value.value),
                                          is_float=True)
                    else:
                        folded = ir.Const(int(instr.value.value))
            elif isinstance(instr, ir.Phi):
                ops = {op if not isinstance(op, ir.Const) else ("c", op.value,
                                                                op.is_float)
                       for _, op in instr.incomings}
                if len(ops) == 1:
                    only = instr.incomings[0][1]
                    # A phi of identical operands (but not self-referencing).
                    if only != instr.result:
                        folded = only
            if folded is not None and instr.result is not None:
                replacement[instr.result] = folded
                changed += 1
                continue
            if isinstance(instr, ir.CondBr) and isinstance(instr.cond, ir.Const):
                target = (instr.true_target if instr.cond.value
                          else instr.false_target)
                dropped = (instr.false_target if instr.cond.value
                           else instr.true_target)
                new_instrs.append(ir.Br(target=target))
                _remove_phi_edge(fn, dropped, blk.label,
                                 still_has_edge=(target == dropped))
                changed += 1
                continue
            new_instrs.append(instr)
        blk.instrs = new_instrs
    if replacement:
        for blk in fn.blocks:
            for instr in blk.instrs:
                instr.replace_operands(replacement)
    return changed


def _remove_phi_edge(fn: ir.LIRFunction, block_label: str, pred_label: str,
                     still_has_edge: bool) -> None:
    if still_has_edge:
        return
    try:
        blk = fn.block(block_label)
    except Exception:
        return
    for phi in blk.phis():
        phi.incomings = [(lbl, op) for lbl, op in phi.incomings
                         if lbl != pred_label]


def run_on_function(fn: ir.LIRFunction, max_iters: int = 8) -> int:
    total = 0
    for _ in range(max_iters):
        changed = fold_function(fn)
        total += changed
        if not changed:
            break
    return total


def run_on_module(module: ir.LIRModule) -> int:
    return sum(run_on_function(fn) for fn in module.functions)
