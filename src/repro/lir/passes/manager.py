"""A minimal LIR pass manager with per-pass accounting.

Every pass in this package exposes ``run_on_module(module) -> report``
(an int count or a metrics dict).  The manager is the one place that
invokes them, so the one place that observes what each pass did:

* a ``lir-pass:<name>`` span per invocation (module, scope, and the
  instruction/function deltas as attributes), nested under whichever
  pipeline phase is active;
* metrics — ``lir.pass.<name>.runs`` / ``.instrs_removed`` /
  ``.functions_removed`` counters (net, may go negative for growing
  passes like the inliner) and a ``lir.pass.<name>.instr_delta``
  histogram per run.

This mirrors LLVM's ``-time-passes``/pass-instrumentation layering: the
passes themselves stay oblivious to observability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.lir import ir
from repro.obs import trace

PassFn = Callable[[ir.LIRModule], object]


@dataclass(frozen=True)
class PassRecord:
    """What one pass invocation did to one module."""

    name: str
    module: str
    instrs_before: int
    instrs_after: int
    functions_before: int
    functions_after: int
    #: Whatever the pass returned (int count or metrics dict).
    report: object = None

    @property
    def instr_delta(self) -> int:
        return self.instrs_after - self.instrs_before

    @property
    def function_delta(self) -> int:
        return self.functions_after - self.functions_before


class PassManager:
    """Runs a fixed pass sequence over modules, recording per-pass deltas."""

    def __init__(self, passes: Sequence[Tuple[str, PassFn]],
                 scope: str = "module"):
        self.passes = list(passes)
        self.scope = scope
        self.records: List[PassRecord] = []

    def run(self, module: ir.LIRModule) -> Dict[str, object]:
        """Run every pass in order; returns the last report per pass name."""
        reports: Dict[str, object] = {}
        metrics = trace.metrics()
        for name, run_on_module in self.passes:
            instrs_before = module.num_instrs
            fns_before = len(module.functions)
            with trace.span(f"lir-pass:{name}", kind="lir-pass",
                            module=module.name, scope=self.scope) as span:
                report = run_on_module(module)
                record = PassRecord(
                    name=name, module=module.name,
                    instrs_before=instrs_before,
                    instrs_after=module.num_instrs,
                    functions_before=fns_before,
                    functions_after=len(module.functions),
                    report=report)
                span.annotate(instr_delta=record.instr_delta,
                              function_delta=record.function_delta)
            self.records.append(record)
            reports[name] = report
            metrics.inc(f"lir.pass.{name}.runs")
            metrics.inc(f"lir.pass.{name}.instrs_removed",
                        -record.instr_delta)
            metrics.inc(f"lir.pass.{name}.functions_removed",
                        -record.function_delta)
            metrics.observe(f"lir.pass.{name}.instr_delta",
                            record.instr_delta)
        return reports


def osize_pipeline() -> List[Tuple[str, PassFn]]:
    """The standard per-module -Osize scalar cleanup sequence."""
    from repro.lir.passes import constprop, dce, mem2reg, simplifycfg

    return [
        ("mem2reg", mem2reg.run_on_module),
        ("constprop", constprop.run_on_module),
        ("dce", dce.run_on_module),
        ("simplifycfg", simplifycfg.run_on_module),
        ("constprop", constprop.run_on_module),
        ("dce", dce.run_on_module),
    ]
