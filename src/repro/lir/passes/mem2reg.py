"""mem2reg: promote Allocas to SSA values with phi nodes.

Every Alloca emitted by IRGen is promotable (its address is only ever used
directly by Load/Store and never escapes), so after this pass no allocas
remain and the function is in SSA form.  Standard algorithm: phi placement
at iterated dominance frontiers, then renaming along the dominator tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.lir import ir
from repro.lir.cfg import compute_dominators, dominance_frontiers, reachable_blocks


def promote_allocas(fn: ir.LIRFunction) -> int:
    """Promote all allocas in *fn*; returns the number promoted."""
    _drop_unreachable_blocks(fn)
    allocas = [
        instr for blk in fn.blocks for instr in blk.instrs
        if isinstance(instr, ir.Alloca)
    ]
    if not allocas:
        return 0
    alloca_ids = {a.result for a in allocas}
    float_of = {a.result: a.is_float for a in allocas}

    # Blocks that store to each alloca.
    def_blocks: Dict[int, Set[str]] = {a.result: set() for a in allocas}
    for blk in fn.blocks:
        for instr in blk.instrs:
            if isinstance(instr, ir.Store) and instr.ptr in alloca_ids:
                def_blocks[instr.ptr].add(blk.label)

    frontiers = dominance_frontiers(fn)
    idom = compute_dominators(fn)

    # Phi placement (iterated dominance frontier).
    phi_for: Dict[Tuple[str, int], ir.Phi] = {}
    for var, defs in def_blocks.items():
        work = list(defs)
        placed: Set[str] = set()
        while work:
            blk_label = work.pop()
            for front in frontiers.get(blk_label, ()):
                if front in placed:
                    continue
                placed.add(front)
                phi = ir.Phi(result=fn.new_value(), incomings=[],
                             is_float=float_of[var])
                fn.block(front).instrs.insert(0, phi)
                phi_for[(front, var)] = phi
                if front not in defs:
                    work.append(front)

    # Renaming along the dominator tree.
    children: Dict[str, List[str]] = {label: [] for label in idom}
    for label, parent in idom.items():
        if parent is not None:
            children[parent].append(label)

    preds = fn.predecessors()
    stack: Dict[int, List[ir.Operand]] = {var: [] for var in alloca_ids}

    def current(var: int) -> ir.Operand:
        if stack[var]:
            return stack[var][-1]
        # Use of an uninitialised slot: IRGen always stores before loading,
        # so this only appears on dead paths; zero is a safe placeholder.
        return ir.Const(0.0, is_float=True) if float_of[var] else ir.Const(0)

    phi_var = {id(phi): var for (blk, var), phi in phi_for.items()}

    def rename(label: str) -> None:
        pushed: List[int] = []
        blk = fn.block(label)
        new_instrs: List[ir.LIRInstr] = []
        for instr in blk.instrs:
            if isinstance(instr, ir.Alloca) and instr.result in alloca_ids:
                continue
            if isinstance(instr, ir.Phi) and id(instr) in phi_var:
                var = phi_var[id(instr)]
                stack[var].append(instr.result)
                pushed.append(var)
                new_instrs.append(instr)
                continue
            if isinstance(instr, ir.Load) and instr.ptr in alloca_ids:
                replacement[instr.result] = current(instr.ptr)
                continue
            if isinstance(instr, ir.Store) and instr.ptr in alloca_ids:
                value = instr.value
                if ir.is_value(value) and value in replacement:
                    value = replacement[value]
                stack[instr.ptr].append(value)
                pushed.append(instr.ptr)
                continue
            instr.replace_operands(replacement)
            new_instrs.append(instr)
        blk.instrs = new_instrs
        for succ in blk.successors():
            for var in alloca_ids:
                phi = phi_for.get((succ, var))
                if phi is not None:
                    phi.incomings.append((label, current(var)))
        for child in children.get(label, []):
            rename(child)
        for var in reversed(pushed):
            stack[var].pop()

    # replacement maps promoted load results to SSA operands; it grows as we
    # rename, and later uses are rewritten through it (def dominates use).
    replacement: Dict[int, ir.Operand] = {}

    import sys
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000 + 10 * len(fn.blocks)))
    try:
        rename(fn.entry.label)
    finally:
        sys.setrecursionlimit(old_limit)

    # A second sweep: fix any operands renamed after their use was visited
    # (cannot happen along dominator order, but phi incomings from back
    # edges were appended with then-current defs, which is correct; loads
    # replaced later are already handled).  Sweep for safety.
    for blk in fn.blocks:
        for instr in blk.instrs:
            instr.replace_operands(replacement)
    return len(allocas)


def _drop_unreachable_blocks(fn: ir.LIRFunction) -> None:
    keep = set(reachable_blocks(fn))
    if len(keep) == len(fn.blocks):
        return
    fn.blocks = [blk for blk in fn.blocks if blk.label in keep]
    # Remove phi incomings from deleted predecessors.
    for blk in fn.blocks:
        for phi in blk.phis():
            phi.incomings = [(lbl, op) for lbl, op in phi.incomings
                             if lbl in keep]


def run_on_module(module: ir.LIRModule) -> int:
    return sum(promote_allocas(fn) for fn in module.functions)
