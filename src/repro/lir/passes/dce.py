"""Dead code elimination: drop side-effect-free instructions with unused
results, iterating to a fixed point.
"""

from __future__ import annotations

from typing import Set

from repro.lir import ir


def run_on_function(fn: ir.LIRFunction) -> int:
    removed = 0
    while True:
        used: Set[int] = set()
        for blk in fn.blocks:
            for instr in blk.instrs:
                for op in instr.operands():
                    if ir.is_value(op):
                        used.add(op)
        changed = False
        for blk in fn.blocks:
            kept = []
            for instr in blk.instrs:
                dead = (
                    instr.result is not None
                    and instr.result not in used
                    and not instr.has_side_effects
                    and not isinstance(instr, ir.TermInstr)
                )
                if dead:
                    removed += 1
                    changed = True
                else:
                    kept.append(instr)
            blk.instrs = kept
        if not changed:
            return removed


def run_on_module(module: ir.LIRModule) -> int:
    return sum(run_on_function(fn) for fn in module.functions)
