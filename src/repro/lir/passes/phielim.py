"""Out-of-SSA translation (phi elimination).

Replaces every phi with copies using the classic two-stage scheme that is
immune to the lost-copy and swap problems:

* for each phi ``p`` a fresh staging value ``t_p`` is introduced;
* every predecessor appends ``t_p = incoming_value`` before its terminator;
* the phi itself becomes ``p.result = t_p`` at the head of its block.

This is precisely the step the paper blames for the O(N^2) copy/spill
blow-up of Swift ``try``-heavy initializers (Listing 11, Figure 9): a shared
error block with N phis and E incoming edges gains N copies on *each* edge.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lir import ir


def run_on_function(fn: ir.LIRFunction) -> int:
    """Eliminate all phis; returns the number of copies inserted."""
    copies = 0
    # Collect phis per block first (mutating as we go is error-prone).
    phi_sites: List[Tuple[str, List[ir.Phi]]] = []
    for blk in fn.blocks:
        phis = blk.phis()
        if phis:
            phi_sites.append((blk.label, phis))
    if not phi_sites:
        return 0
    for label, phis in phi_sites:
        blk = fn.block(label)
        staging: Dict[int, ir.Value] = {}
        for phi in phis:
            staging[id(phi)] = fn.new_value()
        # Stage copies in predecessors.
        for phi in phis:
            t_p = staging[id(phi)]
            for pred_label, op in phi.incomings:
                pred = fn.block(pred_label)
                insert_at = len(pred.instrs)
                if pred.terminator is not None:
                    insert_at -= 1
                pred.instrs.insert(
                    insert_at,
                    ir.Copy(result=t_p, value=op, is_float=phi.is_float))
                copies += 1
        # Replace the phis with reads of the staging values.
        head = [
            ir.Copy(result=phi.result, value=staging[id(phi)],
                    is_float=phi.is_float)
            for phi in phis
        ]
        blk.instrs = head + blk.instrs[len(phis):]
        copies += len(head)
    return copies


def run_on_module(module: ir.LIRModule) -> int:
    return sum(run_on_function(fn) for fn in module.functions)
