"""LIR structural verifier.

Checks the invariants the backend relies on; used heavily by tests:

* every block ends in exactly one terminator, with no terminator mid-block;
* branch targets exist;
* phi incomings exactly cover the block's CFG predecessors;
* in SSA form (post-mem2reg, pre-phielim) every value has a single def and
  defs dominate uses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import VerifierError
from repro.lir import ir
from repro.lir.cfg import compute_dominators, dominates, reachable_blocks


def verify_function(fn: ir.LIRFunction, check_ssa: bool = True) -> None:
    labels = {blk.label for blk in fn.blocks}
    if len(labels) != len(fn.blocks):
        raise VerifierError(f"{fn.symbol}: duplicate block labels")
    if not fn.blocks:
        raise VerifierError(f"{fn.symbol}: no blocks")
    for blk in fn.blocks:
        if not blk.instrs:
            raise VerifierError(f"{fn.symbol}:{blk.label}: empty block")
        for i, instr in enumerate(blk.instrs):
            is_last = i == len(blk.instrs) - 1
            if isinstance(instr, ir.TermInstr) != is_last:
                raise VerifierError(
                    f"{fn.symbol}:{blk.label}: terminator placement error at "
                    f"instruction {i} ({type(instr).__name__})")
        for succ in blk.successors():
            if succ not in labels:
                raise VerifierError(
                    f"{fn.symbol}:{blk.label}: branch to unknown block "
                    f"{succ!r}")
    _verify_phis(fn)
    if check_ssa:
        _verify_ssa(fn)


def _verify_phis(fn: ir.LIRFunction) -> None:
    preds = fn.predecessors()
    reachable = set(reachable_blocks(fn))
    for blk in fn.blocks:
        if blk.label not in reachable:
            continue
        seen_non_phi = False
        for instr in blk.instrs:
            if isinstance(instr, ir.Phi):
                if seen_non_phi:
                    raise VerifierError(
                        f"{fn.symbol}:{blk.label}: phi after non-phi")
                expected = {p for p in preds[blk.label] if p in reachable}
                got = {lbl for lbl, _ in instr.incomings}
                if got != expected:
                    raise VerifierError(
                        f"{fn.symbol}:{blk.label}: phi incomings {sorted(got)} "
                        f"!= predecessors {sorted(expected)}")
            else:
                seen_non_phi = True


def _verify_ssa(fn: ir.LIRFunction) -> None:
    def_block: Dict[int, str] = {}
    for p in fn.params:
        def_block[p] = fn.entry.label
    def_order: Dict[int, int] = {p: -1 for p in fn.params}
    for blk in fn.blocks:
        for i, instr in enumerate(blk.instrs):
            if instr.result is None:
                continue
            if instr.result in def_block:
                raise VerifierError(
                    f"{fn.symbol}: value %{instr.result} defined twice")
            def_block[instr.result] = blk.label
            def_order[instr.result] = i
    idom = compute_dominators(fn)
    reachable = set(idom)
    for blk in fn.blocks:
        if blk.label not in reachable:
            continue
        for i, instr in enumerate(blk.instrs):
            if isinstance(instr, ir.Phi):
                for pred_label, op in instr.incomings:
                    if not ir.is_value(op):
                        continue
                    if op not in def_block:
                        raise VerifierError(
                            f"{fn.symbol}:{blk.label}: phi uses undefined "
                            f"%{op}")
                    dblk = def_block[op]
                    if dblk in reachable and not dominates(idom, dblk,
                                                           pred_label):
                        raise VerifierError(
                            f"{fn.symbol}:{blk.label}: phi incoming %{op} "
                            f"from {pred_label} not dominated by def in "
                            f"{dblk}")
                continue
            for op in instr.operands():
                if not ir.is_value(op):
                    continue
                if op not in def_block:
                    raise VerifierError(
                        f"{fn.symbol}:{blk.label}: use of undefined %{op}")
                dblk = def_block[op]
                if dblk not in reachable:
                    continue
                if dblk == blk.label:
                    if def_order[op] >= i:
                        raise VerifierError(
                            f"{fn.symbol}:{blk.label}: %{op} used before "
                            f"its definition in the same block")
                elif not dominates(idom, dblk, blk.label):
                    raise VerifierError(
                        f"{fn.symbol}:{blk.label}: use of %{op} not "
                        f"dominated by its def in {dblk}")


def verify_module(module: ir.LIRModule, check_ssa: bool = True) -> None:
    symbols: Set[str] = set()
    for fn in module.functions:
        if fn.symbol in symbols:
            raise VerifierError(f"duplicate function symbol {fn.symbol!r}")
        symbols.add(fn.symbol)
        verify_function(fn, check_ssa=check_ssa)
    gsyms: Set[str] = set()
    for gbl in module.globals:
        if gbl.symbol in gsyms:
            raise VerifierError(f"duplicate global symbol {gbl.symbol!r}")
        gsyms.add(gbl.symbol)
