"""Binary-level pattern mining entry points (Section IV study)."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.isa.instructions import MachineFunction
from repro.outliner.stats import PatternStat, collect_patterns, pattern_census
from repro.pipeline.build import BuildResult

__all__ = ["mine_build_patterns", "top_patterns", "PatternStat",
           "pattern_census"]


def mine_build_patterns(build: BuildResult,
                        min_len: int = 2,
                        require_profitable: bool = True) -> List[PatternStat]:
    """Mine repeated machine patterns across a finished build."""
    functions: List[MachineFunction] = []
    for module in build.machine_modules:
        functions.extend(module.functions)
    return collect_patterns(functions, min_len=min_len,
                            require_profitable=require_profitable)


def top_patterns(stats: Sequence[PatternStat], count: int = 8,
                 runtime_calls_only: bool = False) -> List[PatternStat]:
    """The most frequent patterns (the paper's Listings 1-8 view)."""
    out = []
    for stat in stats:
        if runtime_calls_only and not any(
                "swift_" in line or "objc_" in line for line in stat.rendered):
            continue
        out.append(stat)
        if len(out) >= count:
            break
    return out
