"""Binary analysis: pattern mining, fits, distributions (Section IV)."""

from repro.analysis.distributions import (
    FrequencyCluster,
    cumulative_savings,
    fractal_clusters,
    length_histogram,
    patterns_for_fraction,
)
from repro.analysis.patterns import mine_build_patterns, top_patterns
from repro.analysis.powerlaw import PowerLawFit, fit_power_law, rank_frequency
from repro.analysis.regression import LinearFit, linear_fit

__all__ = [
    "FrequencyCluster",
    "cumulative_savings",
    "fractal_clusters",
    "length_histogram",
    "patterns_for_fraction",
    "mine_build_patterns",
    "top_patterns",
    "PowerLawFit",
    "fit_power_law",
    "rank_frequency",
    "LinearFit",
    "linear_fit",
]
