"""Power-law fitting for the rank/frequency pattern study (Figure 5).

The paper: "A few patterns repeat very frequently, but there is also a very
long tail ... which obeys the power-law y = a * x^b with 99.4% confidence."
We fit log(y) = log(a) + b*log(x) by least squares and report R^2 on the
log-log scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.analysis.regression import LinearFit, linear_fit


@dataclass(frozen=True)
class PowerLawFit:
    a: float
    b: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.a * (x ** self.b)

    def equation(self) -> str:
        return f"y = {self.a:.2f} * x^{self.b:.3f} (R^2 = {self.r_squared:.3f})"


def fit_power_law(ranks: Sequence[float],
                  frequencies: Sequence[float]) -> PowerLawFit:
    xs = np.asarray(ranks, dtype=float)
    ys = np.asarray(frequencies, dtype=float)
    mask = (xs > 0) & (ys > 0)
    if mask.sum() < 2:
        raise ValueError("need at least two positive points")
    fit: LinearFit = linear_fit(np.log(xs[mask]), np.log(ys[mask]))
    return PowerLawFit(a=float(np.exp(fit.intercept)), b=fit.slope,
                       r_squared=fit.r_squared)


def rank_frequency(counts: Sequence[int]) -> Tuple[list, list]:
    """Ranks 1..N paired with the (descending) counts."""
    ordered = sorted(counts, reverse=True)
    return list(range(1, len(ordered) + 1)), ordered
