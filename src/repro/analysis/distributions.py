"""Distribution views over mined patterns (Figures 6-8).

* :func:`length_histogram` — candidates per sequence length (Figure 8);
* :func:`cumulative_savings` — cumulative bytes saved when outlining the
  next most profitable pattern (Figure 7);
* :func:`fractal_clusters` — the frequency-clustered length structure of
  Figure 6: patterns grouped by repetition count, with per-cluster length
  diversity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.outliner.stats import PatternStat


def length_histogram(stats: Sequence[PatternStat]) -> Dict[int, int]:
    """sequence length -> total number of candidates of that length."""
    hist: Dict[int, int] = {}
    for stat in stats:
        hist[stat.length] = hist.get(stat.length, 0) + stat.num_candidates
    return dict(sorted(hist.items()))


def cumulative_savings(stats: Sequence[PatternStat]) -> List[Tuple[int, int]]:
    """[(patterns outlined, cumulative bytes saved)] in benefit order."""
    ordered = sorted(stats, key=lambda s: -s.benefit_bytes)
    out: List[Tuple[int, int]] = []
    total = 0
    for i, stat in enumerate(ordered, start=1):
        total += stat.benefit_bytes
        out.append((i, total))
    return out


def patterns_for_fraction(stats: Sequence[PatternStat],
                          fraction: float = 0.9) -> int:
    """How many patterns must be outlined to reach *fraction* of the total
    possible saving (the Figure 7 "> 10^2 patterns for > 90%" claim)."""
    curve = cumulative_savings(stats)
    if not curve:
        return 0
    target = curve[-1][1] * fraction
    for count, total in curve:
        if total >= target:
            return count
    return curve[-1][0]


@dataclass(frozen=True)
class FrequencyCluster:
    """All patterns sharing one repetition count (one Figure 6 'step')."""

    frequency: int
    num_patterns: int
    min_length: int
    max_length: int
    distinct_lengths: int


def fractal_clusters(stats: Sequence[PatternStat]) -> List[FrequencyCluster]:
    """Clusters ordered from most-repeated to least-repeated."""
    by_freq: Dict[int, List[int]] = {}
    for stat in stats:
        by_freq.setdefault(stat.num_candidates, []).append(stat.length)
    clusters = []
    for freq in sorted(by_freq, reverse=True):
        lengths = by_freq[freq]
        clusters.append(FrequencyCluster(
            frequency=freq,
            num_patterns=len(lengths),
            min_length=min(lengths),
            max_length=max(lengths),
            distinct_lengths=len(set(lengths)),
        ))
    return clusters
