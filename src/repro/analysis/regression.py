"""Ordinary-least-squares linear regression (Figure 1's trend lines)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LinearFit:
    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept

    def equation(self, var: str = "x") -> str:
        return (f"y = {self.slope:.3f}{var} + {self.intercept:.2f} "
                f"(R^2 = {self.r_squared:.3f})")


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if len(x) < 2:
        raise ValueError("need at least two points for a fit")
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=float(slope), intercept=float(intercept),
                     r_squared=r2)
