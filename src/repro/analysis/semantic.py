"""Semantic-equivalence headroom study (the paper's future work #1).

The shipping outliner matches instruction sequences *syntactically*: two
sequences that differ only in register assignment (the paper's Listings 1
vs 2) never merge.  This module estimates the headroom of a hypothetical
outliner that matches sequences up to register renaming, by re-mining the
binary with *register-abstracted* instruction identities.

The resulting number is an **optimistic upper bound**: it abstracts every
register operand independently (no cross-instruction renaming-consistency
check) and prices the rename fix-ups at zero.  A real semantic outliner
would land between the exact and abstract figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instructions import MachineFunction, MachineInstr
from repro.isa.registers import reg_class
from repro.outliner.candidates import InstructionMapper, prune_overlaps
from repro.outliner.cost_model import cost_of
from repro.outliner.suffix_tree import SuffixTree
from repro.target.spec import TargetSpec


class _AbstractingMapper(InstructionMapper):
    """Interns instructions with register operands reduced to classes."""

    def _legal_id(self, instr: MachineInstr) -> int:
        key = _abstract_key(instr)
        if key not in self._intern:
            self._intern[key] = self._next_legal
            self._next_legal += 1
        return self._intern[key]


def _abstract_key(instr: MachineInstr) -> Tuple:
    operands = tuple(
        ("reg", reg_class(op).value) if isinstance(op, str) else op
        for op in instr.operands
    )
    return (instr.opcode, operands, len(instr.implicit_uses),
            len(instr.implicit_defs))


@dataclass
class SemanticHeadroom:
    exact_benefit_bytes: int
    abstract_benefit_bytes: int

    @property
    def extra_benefit_bytes(self) -> int:
        return max(0, self.abstract_benefit_bytes
                   - self.exact_benefit_bytes)

    @property
    def headroom_pct(self) -> float:
        if self.exact_benefit_bytes == 0:
            return 0.0
        return 100.0 * self.extra_benefit_bytes / self.exact_benefit_bytes


def _total_benefit(functions: Sequence[MachineFunction],
                   mapper: InstructionMapper,
                   target: Optional[TargetSpec] = None) -> int:
    program = mapper.map_functions(list(functions))
    if not program.ids:
        return 0
    tree = SuffixTree(program.ids)
    total = 0
    for rs in tree.repeated_substrings(min_len=2):
        s0 = rs.starts[0]
        if any(program.ids[s0 + i] < 0 for i in range(rs.length)):
            continue
        starts = prune_overlaps(rs.starts, rs.length)
        if len(starts) < 2:
            continue
        benefit = cost_of(program.instr_seq(s0, rs.length), target).benefit(
            len(starts))
        if benefit >= 1:
            total += benefit
    return total


def measure_headroom(functions: Sequence[MachineFunction],
                     target: Optional[TargetSpec] = None) -> SemanticHeadroom:
    """Compare exact-match mining against register-abstracted mining.

    Benefits are priced under *target* (default: the session target).
    """
    return SemanticHeadroom(
        exact_benefit_bytes=_total_benefit(functions, InstructionMapper(),
                                           target),
        abstract_benefit_bytes=_total_benefit(functions, _AbstractingMapper(),
                                              target),
    )
