"""JSON-over-socket wire protocol for the build service.

Framing is one JSON object per ``\\n``-terminated UTF-8 line — trivially
debuggable with ``nc`` and append-friendly (the job journal reuses the
same encoding).  Every response carries ``ok``; failures carry a *typed*
error — the exception class name from :mod:`repro.errors` plus a message —
so a client can re-raise exactly what the daemon raised.  An EOF or a
truncated/oversized/malformed line raises
:class:`~repro.errors.ProtocolError` on the reading side; it never hangs
and never silently yields a partial object.

The config that travels with a submit request is a *whitelisted subset*
of :class:`~repro.pipeline.config.BuildConfig`: the fields that define
**what** to build (pipeline, target, rounds, merge mode, pass toggles).
Operational knobs — workers, cache dir, fault plan, deadlines — belong to
the daemon, which is what makes one shared cache and one admission policy
possible across many clients.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional

from repro import errors as errors_mod
from repro.errors import ProtocolError, ReproError, ServiceError
from repro.pipeline.config import SPEED_FIELDS, BuildConfig, config_fields

#: Protocol revision; bumped on incompatible frame-shape changes.
PROTOCOL_VERSION = 1

#: Upper bound on one frame (sources for very large synthetic apps fit
#: comfortably; anything bigger is a protocol violation, not a build).
MAX_FRAME_BYTES = 64 * 1024 * 1024


def send_frame(wfile, obj: Dict[str, object]) -> None:
    """Serialise one frame onto a writable binary file object.

    Keys are deliberately NOT sorted: the ``sources`` module map's order
    is semantic (module order fixes type-id bases and data layout), and
    JSON round-trips dict insertion order faithfully.
    """
    data = json.dumps(obj, separators=(",", ":"))
    wfile.write(data.encode("utf-8") + b"\n")
    wfile.flush()


def recv_frame(rfile) -> Dict[str, object]:
    """Read one frame; raises :class:`ProtocolError`, never hangs on a
    malformed peer (EOF, missing terminator, oversized, bad JSON)."""
    line = rfile.readline(MAX_FRAME_BYTES + 1)
    if not line:
        raise ProtocolError("connection closed before a frame arrived")
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    if not line.endswith(b"\n"):
        raise ProtocolError("connection closed mid-frame (torn request)")
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"malformed frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame is not a JSON object")
    return obj


# --- typed errors over the wire ----------------------------------------------


def error_to_wire(exc: BaseException) -> Dict[str, str]:
    """Encode an exception as ``{"error": <class>, "message": ...}``.

    Non-:class:`ReproError` exceptions are reported as ``BuildError`` so
    a daemon bug still surfaces to the client as a *typed* toolchain
    error (the invariant forbids both hangs and untyped failures).
    """
    name = type(exc).__name__
    if not isinstance(exc, ReproError):
        name = "BuildError"
    wire: Dict[str, object] = {
        "error": name, "message": f"{type(exc).__name__}: {exc}"}
    # Structured fields some errors carry (e.g. QueueFullError's
    # depth/limit — a client's backoff policy wants the numbers).
    detail = {field: getattr(exc, field)
              for field in ("depth", "limit", "chunk", "attempt")
              if isinstance(getattr(exc, field, None), int)}
    if detail:
        wire["detail"] = detail
    return wire


def wire_to_error(payload: Dict[str, object]) -> ReproError:
    """Decode a wire error into the matching typed exception instance.

    Only :class:`ReproError` subclasses defined in :mod:`repro.errors`
    are eligible (a malicious or buggy peer cannot name an arbitrary
    class); unknown names fall back to :class:`ServiceError`.
    """
    name = str(payload.get("error", "ServiceError"))
    message = str(payload.get("message", "unknown service error"))
    detail = payload.get("detail")
    kwargs = ({k: v for k, v in detail.items() if isinstance(v, int)}
              if isinstance(detail, dict) else {})
    cls = getattr(errors_mod, name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        # Every errors.py subclass keeps a message-first signature; the
        # structured fields are keyword-only extras on the ones that
        # carry them.
        try:
            return cls(message, **kwargs)
        except TypeError:
            try:
                return cls(message)
            except Exception:
                pass
        except Exception:
            pass
    return ServiceError(message)


# --- build-config subset on the wire -----------------------------------------

#: Fingerprinted fields that nonetheless must NOT travel the wire, with
#: the reason each is excluded.  Everything listed here is re-audited by
#: the protocol tests: a field may only appear if it is still a real
#: BuildConfig field.
CONFIG_WIRE_EXCLUDED = {
    # A local filesystem path — a remote daemon must never open
    # client-named files; ship the profile *content* in a future field.
    "profile_path",
}

#: Fields a client may set: they define the artifact, not the machinery.
#: Derived from the config-field partition rather than hand-maintained:
#: every BuildConfig field that enters a fingerprint (i.e. is not a
#: build-speed/robustness knob in SPEED_FIELDS) is wire-settable unless
#: explicitly excluded above.  Adding a new artifact-defining knob to
#: BuildConfig therefore makes it wire-round-trippable automatically.
CONFIG_WIRE_FIELDS = tuple(
    name for name in config_fields()
    if name not in SPEED_FIELDS and name not in CONFIG_WIRE_EXCLUDED
)


def config_to_wire(config: BuildConfig) -> Dict[str, object]:
    return {name: getattr(config, name) for name in CONFIG_WIRE_FIELDS}


def config_from_wire(data: Optional[Dict[str, object]]) -> BuildConfig:
    """Whitelisted BuildConfig from a wire dict; typed error on junk."""
    data = data or {}
    unknown = sorted(set(data) - set(CONFIG_WIRE_FIELDS))
    if unknown:
        raise ServiceError(
            f"unknown build-config field(s) on the wire: "
            f"{', '.join(unknown)} (allowed: "
            f"{', '.join(CONFIG_WIRE_FIELDS)})")
    try:
        return BuildConfig(**{str(k): v for k, v in data.items()})
    except TypeError as exc:
        raise ServiceError(f"bad build config: {exc}") from exc


# --- image identity ----------------------------------------------------------


def image_summary(image) -> Dict[str, object]:
    """The wire-sized identity of a built image.

    The full image never crosses the socket; the client gets sizes plus
    sha256 digests of the canonical text/data sections — exactly what the
    bit-identity invariant is stated over.
    """
    text = image.text_section()
    data = image.data_section()
    return {
        "text_sha256": hashlib.sha256(text).hexdigest(),
        "data_sha256": hashlib.sha256(data).hexdigest(),
        "text_bytes": image.text_bytes,
        "data_bytes": image.data_bytes,
        "binary_bytes": image.binary_bytes,
        "num_functions": image.num_functions,
        "num_instrs": len(image.instrs),
    }
