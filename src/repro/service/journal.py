"""Append-only crash-recovery job journal (JSONL + atomic checkpoints).

Write-ahead discipline: a job is journaled **before** it is admitted to
the queue, marked ``start`` when an executor picks it up, and ``done``
(with the image digests or the typed error) when it finishes.  Appends
are flushed and fsynced, so after a ``kill -9`` the journal tells the
restarted daemon exactly which jobs were in flight; because builds are
deterministic and cache publication is atomic, *re-running* a journaled
job is indistinguishable from having finished it — bit-identical image or
the same typed error, never a torn cache entry.

A process killed mid-append leaves at most one torn tail line; replay
detects it (bad JSON or missing terminator), counts it, and drops **only
that record** — everything before it is intact because records never span
lines.  The ``journal_torn`` fault site simulates exactly this: the
injected append writes half the record and no newline, and the *next*
append starts with a newline so the corruption stays confined to the one
record a real crash would have lost.  A journal reopened over an
existing file performs the same re-sync when the tail lacks its
terminator, so the first post-restart append is never glued to a line a
real crash tore.

``checkpoint()`` compacts the journal (drops records superseded by a
``done``) by writing a temp file and atomically renaming it over the
journal — the same publish-by-rename pattern the cache uses, so a crash
mid-checkpoint leaves the previous journal intact.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.pipeline.faults import FaultPlan


@dataclass
class ReplayState:
    """What the journal says about one job after a full replay."""

    job_id: str
    #: "pending" (submitted/started, never finished) or "done".
    status: str = "pending"
    sources: Dict[str, str] = field(default_factory=dict)
    config: Dict[str, object] = field(default_factory=dict)
    deadline: Optional[float] = None
    #: Times the job was picked up by an executor (>1 ⇒ recovered runs).
    attempts: int = 0
    #: The terminal record's payload ("result" / "error" / "report").
    outcome: Dict[str, object] = field(default_factory=dict)


@dataclass
class ReplayResult:
    jobs: Dict[str, ReplayState] = field(default_factory=dict)
    #: Submission order of every job seen (replay re-runs in this order).
    order: List[str] = field(default_factory=list)
    torn_records: int = 0

    @property
    def pending(self) -> List[ReplayState]:
        return [self.jobs[j] for j in self.order
                if self.jobs[j].status == "pending"]


class JobJournal:
    """One JSONL journal file under the daemon's state dir."""

    def __init__(self, path: str, fault_plan: Optional[FaultPlan] = None):
        self.path = path
        self.fault_plan = fault_plan
        self._fh = None
        #: Set when an injected torn append left the tail unterminated;
        #: the next append re-synchronises with a leading newline.
        self._tail_torn = False

    # -- appending -----------------------------------------------------------

    def _open(self):
        if self._fh is None:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            # A process killed mid-append (a *real* crash, not just the
            # fault site) leaves the journal without a trailing newline.
            # A restarted journal must re-sync before its first append,
            # or that append would concatenate onto the torn line and be
            # silently dropped by every later replay — losing a record
            # that the write-ahead contract promised was durable.
            try:
                with open(self.path, "rb") as existing:
                    existing.seek(-1, os.SEEK_END)
                    if existing.read(1) != b"\n":
                        self._tail_torn = True
            except (OSError, ValueError):
                pass  # missing or empty journal: nothing to re-sync
            self._fh = open(self.path, "ab")
        return self._fh

    def append(self, record: Dict[str, object]) -> bool:
        """Durably append one record; False if an injected tear ate it.

        Keys stay in insertion order — the ``sources`` map's order is
        semantic (module order fixes type-id bases and data layout), and
        a replayed job must rebuild the *same* program.
        """
        data = json.dumps(record, separators=(",", ":"))
        blob = data.encode("utf-8") + b"\n"
        fh = self._open()
        if self._tail_torn:
            fh.write(b"\n")
            self._tail_torn = False
        torn = (self.fault_plan is not None
                and self.fault_plan.should_fire(
                    "journal_torn",
                    f"append:{record.get('rec')}:{record.get('id')}"))
        if torn:
            fh.write(blob[:max(1, len(blob) // 2)].rstrip(b"\n"))
            self._tail_torn = True
        else:
            fh.write(blob)
        fh.flush()
        try:
            os.fsync(fh.fileno())
        except OSError:
            pass
        return not torn

    def submitted(self, job_id: str, sources: Dict[str, str],
                  config: Dict[str, object],
                  deadline: Optional[float]) -> None:
        self.append({"rec": "submit", "id": job_id, "sources": sources,
                     "config": config, "deadline": deadline})

    def started(self, job_id: str, attempt: int) -> None:
        self.append({"rec": "start", "id": job_id, "attempt": attempt})

    def done(self, job_id: str, status: str,
             payload: Dict[str, object]) -> None:
        record = {"rec": "done", "id": job_id, "status": status}
        record.update(payload)
        self.append(record)

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None

    # -- replay --------------------------------------------------------------

    def replay(self) -> ReplayResult:
        """Reconstruct job states from disk (tolerates a torn tail)."""
        result = ReplayResult()
        try:
            with open(self.path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return result
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                result.torn_records += 1
                continue
            if not isinstance(record, dict):
                result.torn_records += 1
                continue
            job_id = str(record.get("id", ""))
            kind = record.get("rec")
            if kind == "submit":
                state = ReplayState(
                    job_id=job_id,
                    sources={str(k): str(v) for k, v in
                             (record.get("sources") or {}).items()},
                    config=dict(record.get("config") or {}),
                    deadline=record.get("deadline"))
                if job_id not in result.jobs:
                    result.order.append(job_id)
                result.jobs[job_id] = state
            elif kind == "start" and job_id in result.jobs:
                result.jobs[job_id].attempts += 1
            elif kind == "done" and job_id in result.jobs:
                state = result.jobs[job_id]
                state.status = "done"
                state.outcome = {k: v for k, v in record.items()
                                 if k not in ("rec", "id")}
        return result

    # -- compaction ----------------------------------------------------------

    def checkpoint(self, keep_done: int = 256) -> ReplayResult:
        """Atomically rewrite the journal in compacted form.

        Pending jobs keep their full submit record (they must survive a
        restart); finished jobs are folded to a single ``submit`` +
        ``done`` pair, and only the newest ``keep_done`` of those are
        retained so the journal cannot grow without bound under a
        long-lived daemon.
        """
        replay = self.replay()
        done_ids = [j for j in replay.order
                    if replay.jobs[j].status == "done"]
        kept_done = set(done_ids[-keep_done:] if keep_done else [])
        tmp = self.path + ".ckpt.tmp"
        with open(tmp, "wb") as fh:
            for job_id in replay.order:
                state = replay.jobs[job_id]
                if state.status == "done" and job_id not in kept_done:
                    continue
                submit = {"rec": "submit", "id": job_id,
                          "sources": state.sources, "config": state.config,
                          "deadline": state.deadline}
                fh.write(json.dumps(submit, separators=(",", ":"))
                         .encode("utf-8") + b"\n")
                if state.status == "done":
                    record = {"rec": "done", "id": job_id}
                    record.update(state.outcome)
                    fh.write(json.dumps(record, separators=(",", ":"))
                             .encode("utf-8") + b"\n")
            fh.flush()
            try:
                os.fsync(fh.fileno())
            except OSError:
                pass
        self.close()
        os.replace(tmp, self.path)
        self._tail_torn = False
        return replay
