"""The long-lived build daemon.

One process, three moving parts:

* **Admission** — a bounded job queue.  A full queue rejects *immediately*
  with a typed :class:`~repro.errors.QueueFullError` on the wire (depth
  and limit attached) — backpressure is a first-class answer, never a
  hang.  Admission is write-ahead-journaled: the submit record is durable
  before the job enters the queue, so a ``kill -9`` at any later point
  leaves a recoverable job, never a lost one.

* **Executors** — ``job_workers`` threads, each running one admitted job
  at a time through :func:`repro.pipeline.build.build_program` with its
  own :class:`~repro.pipeline.cancel.CancelScope` (deadline = the job's
  budget).  Cancellation is cooperative and *per job*: an expired
  deadline tears down that job's forked worker pool at the next
  checkpoint and journals a typed ``DeadlineExpiredError``; every other
  job keeps running.

* **Degradation** — the PR 2 ladder extended to service scope.  A
  :class:`CircuitBreaker` watches per-job infrastructure signals (worker
  crashes, cache quarantines/corruption) over a sliding window; past the
  threshold it trips **open** and the next jobs run serial-uncached (the
  always-correct slow path), then it closes again after a cooldown.  All
  of it is visible through the PR 3 metrics registry: queue depth,
  admission rejections, breaker state, per-job latency histograms.

Graceful drain (SIGTERM/SIGINT or a ``drain`` frame): stop admitting —
late submitters get a typed rejection — finish or journal what is in
flight, checkpoint the journal, and hand back a typed summary.

Restart recovery: replay the journal, re-admit every job that has a
``submit`` record but no ``done`` record (bypassing admission control —
recovered jobs were already admitted once), and serve completed results
straight from the journal.  Determinism + atomic cache publication make
the re-run bit-identical to the build the crash interrupted.
"""

from __future__ import annotations

import collections
import json
import os
import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.errors import (
    CacheCorruptionError,
    JobCancelledError,
    ProtocolError,
    QueueFullError,
    ReproError,
    ServiceError,
    WorkerCrashError,
)
from repro.obs.metrics import MetricsRegistry
from repro.pipeline.build import build_program
from repro.pipeline.cache import ModuleCache
from repro.pipeline.cancel import CancelScope
from repro.pipeline.faults import FaultPlan
from repro.service.journal import JobJournal
from repro.service.protocol import (
    config_from_wire,
    error_to_wire,
    image_summary,
    recv_frame,
    send_frame,
)

#: Degradation kinds that indicate *infrastructure* trouble (breaker input),
#: as opposed to e.g. a client's own source errors.
INFRA_DEGRADATIONS = frozenset({
    "worker-crash", "chunk-timeout", "chunk-error", "pool-unavailable",
    "chunk-serial-rerun", "cache-quarantine", "cache-store-failed",
})

#: Extra seconds a waiting connection hangs on past the job deadline
#: before getting a typed "still running" answer instead of a result.
WAIT_GRACE_SECONDS = 30.0


@dataclass
class ServiceConfig:
    """Operational knobs for one daemon instance."""

    state_dir: str
    cache_dir: Optional[str] = None          # default: <state_dir>/cache
    queue_size: int = 16
    job_workers: int = 2                     # concurrent jobs (executors)
    build_workers: int = 2                   # forked workers per job
    default_deadline: Optional[float] = 120.0
    chunk_timeout: Optional[float] = 30.0
    incremental: bool = True
    breaker_threshold: int = 3
    breaker_window: int = 10
    breaker_cooldown: int = 5
    max_cache_bytes: Optional[int] = None
    quarantine_max_bytes: int = 0
    checkpoint_every: int = 32               # jobs between journal compactions
    done_jobs_kept: int = 1024               # in-memory finished-job window
    fault_plan: Optional[FaultPlan] = None

    def resolved_cache_dir(self) -> str:
        return self.cache_dir or os.path.join(self.state_dir, "cache")


@dataclass
class JobState:
    """One job's lifecycle inside the daemon."""

    job_id: str
    sources: Dict[str, str]
    wire_config: Dict[str, object]
    deadline: Optional[float]
    status: str = "queued"       # queued | running | ok | error
    recovered: bool = False
    attempts: int = 0
    breaker_open: bool = False
    image: Dict[str, object] = field(default_factory=dict)
    report: Dict[str, object] = field(default_factory=dict)
    error: Dict[str, object] = field(default_factory=dict)
    done: threading.Event = field(default_factory=threading.Event,
                                  repr=False, compare=False)
    scope: Optional[CancelScope] = field(default=None, repr=False,
                                         compare=False)

    @property
    def finished(self) -> bool:
        return self.status in ("ok", "error")

    def view(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "id": self.job_id, "status": self.status,
            "recovered": self.recovered, "attempts": self.attempts,
            "breaker_open": self.breaker_open,
        }
        if self.image:
            out["image"] = dict(self.image)
        if self.report:
            out["report"] = dict(self.report)
        if self.error:
            out["error"] = dict(self.error)
        return out

    @classmethod
    def from_outcome(cls, job_id: str, sources: Dict[str, str],
                     config: Dict[str, object], deadline: Optional[float],
                     outcome: Dict[str, object]) -> "JobState":
        """Rematerialise a finished job from a journal ``done`` record."""
        job = cls(job_id=job_id, sources=sources, wire_config=config,
                  deadline=deadline, recovered=True)
        job.status = str(outcome.get("status", "error"))
        job.attempts = int(outcome.get("attempts", 1))
        job.breaker_open = bool(outcome.get("breaker_open", False))
        job.image = dict(outcome.get("image") or {})
        job.report = dict(outcome.get("report") or {})
        job.error = dict(outcome.get("error") or {})
        job.done.set()
        return job


class CircuitBreaker:
    """Count-based breaker over the last ``window`` job outcomes.

    Closed: jobs run with the configured parallel/cached settings.  Once
    ``threshold`` of the last ``window`` jobs showed infrastructure
    failure signals, the breaker opens: the next ``cooldown`` jobs run in
    **serial-uncached** mode — no forked workers to crash, no cache
    entries to corrupt; the always-correct slow path — after which the
    breaker closes with a cleared window.  Thread-safe; state changes are
    deliberately monotonic per record() call so tests can drive it
    deterministically.
    """

    def __init__(self, threshold: int = 3, window: int = 10,
                 cooldown: int = 5):
        self.threshold = max(1, threshold)
        self.cooldown = max(1, cooldown)
        self._outcomes: Deque[int] = collections.deque(maxlen=max(1, window))
        self._lock = threading.Lock()
        self._open_remaining = 0
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return "open" if self._open_remaining > 0 else "closed"

    @property
    def is_open(self) -> bool:
        return self.state == "open"

    def record(self, infra_failure: bool) -> None:
        with self._lock:
            if self._open_remaining > 0:
                self._open_remaining -= 1
                if self._open_remaining <= 0:
                    self._outcomes.clear()
                return
            self._outcomes.append(1 if infra_failure else 0)
            if sum(self._outcomes) >= self.threshold:
                self._open_remaining = self.cooldown
                self.trips += 1


def _preimport_compiler() -> None:
    """Import everything a forked chunk worker needs *before* any fork.

    The daemon forks pools from executor threads; a child that had to
    finish a module import could deadlock on an import lock held by a
    thread that does not exist in the child.  Importing up front makes
    the children's imports cache hits.
    """
    import repro.backend.llc        # noqa: F401
    import repro.lir.irgen          # noqa: F401
    import repro.pipeline.build     # noqa: F401
    import repro.sim.cpu            # noqa: F401


class BuildService:
    """The daemon's engine, importable and testable without a socket.

    ``start()`` recovers the journal and launches executors; the socket
    layer (:meth:`start_server` / :meth:`run`) is a thin wire adapter on
    top of :meth:`handle_request`.  Tests drive admission, deadlines,
    recovery and the breaker directly through these methods.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        os.makedirs(config.state_dir, exist_ok=True)
        #: Shared secret for the wire layer: published only through the
        #: 0600 endpoint file, so socket access is bounded by state-dir
        #: file permissions (the TCP port alone grants nothing).
        self.auth_token = uuid.uuid4().hex
        self.cache_dir = config.resolved_cache_dir()
        self.journal = JobJournal(
            os.path.join(config.state_dir, "journal.jsonl"),
            fault_plan=config.fault_plan)
        self.maintenance_cache = ModuleCache(self.cache_dir)
        self.breaker = CircuitBreaker(config.breaker_threshold,
                                      config.breaker_window,
                                      config.breaker_cooldown)
        self.metrics = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        self._journal_lock = threading.Lock()
        self._lock = threading.Lock()          # jobs / admission / drain
        self._queue: "queue.Queue[object]" = queue.Queue(
            maxsize=max(1, config.queue_size))
        #: Admitted-but-not-yet-executing jobs, counted under ``_lock`` —
        #: the admission bound.  ``_queue.qsize()`` alone is racy: many
        #: submits could pass a qsize check before any of their puts land.
        self._backlog = 0
        self._recovered: Deque[JobState] = collections.deque()
        self._jobs: Dict[str, JobState] = {}
        self._done_order: Deque[str] = collections.deque()
        self._executors: List[threading.Thread] = []
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._jobs_since_checkpoint = 0
        self._drain_reason = ""
        self._server = None
        self._server_thread = None
        self.recovered_count = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Recover the journal, reap stale cache temp files, start
        executors."""
        _preimport_compiler()
        # The daemon owns its state dir: nothing else is mid-store at
        # startup, so crashed writers' temp files are reaped regardless
        # of age, and the quarantine is bounded right away.
        self.maintenance_cache.prune(
            self.config.max_cache_bytes
            if self.config.max_cache_bytes is not None else (1 << 62),
            quarantine_max_bytes=self.config.quarantine_max_bytes,
            tmp_ttl=0.0)
        replay = self.journal.replay()
        if replay.torn_records:
            self._inc("service.journal_torn_records", replay.torn_records)
        for job_id in replay.order:
            state = replay.jobs[job_id]
            if state.status == "done":
                job = JobState.from_outcome(job_id, state.sources,
                                            state.config, state.deadline,
                                            state.outcome)
                with self._lock:
                    self._jobs[job_id] = job
                    self._remember_done(job_id)
                continue
            job = JobState(job_id=job_id, sources=state.sources,
                           wire_config=state.config, deadline=state.deadline,
                           recovered=True, attempts=state.attempts)
            with self._lock:
                self._jobs[job_id] = job
            self._recovered.append(job)
            self.recovered_count += 1
            self._inc("service.jobs_recovered")
        self._update_depth_gauge()
        for i in range(max(1, self.config.job_workers)):
            thread = threading.Thread(target=self._executor_loop,
                                      name=f"repro-exec-{i}", daemon=True)
            thread.start()
            self._executors.append(thread)

    def request_drain(self, reason: str = "drain requested") -> None:
        """Stop admitting; executors exit once the backlog is empty."""
        if not self._draining.is_set():
            self._inc("service.drains")
            self.metrics.set_gauge("service.draining", 1)
            self._drain_reason = reason
            self._draining.set()

    def drain(self, timeout: Optional[float] = None) -> Dict[str, object]:
        """Finish/journal in-flight jobs, compact the journal, and return
        a typed summary (what the CLI prints on graceful exit)."""
        self.request_drain()
        deadline = (time.monotonic() + timeout) if timeout else None
        for thread in self._executors:
            remaining = None
            if deadline is not None:
                remaining = max(0.1, deadline - time.monotonic())
            thread.join(timeout=remaining)
        # Anything still queued after the join timeout stays journaled as
        # pending — the next daemon run recovers it (that *is* the typed
        # answer for jobs a drain deadline cut off).
        with self._journal_lock:
            self.journal.checkpoint()
            self.journal.close()
        # The persistent build pool outlives individual jobs by design;
        # drain is where its forked workers finally go away.
        from repro.pipeline.parallel import shutdown_persistent_pool

        shutdown_persistent_pool()
        self._drained.set()
        return self.summary()

    def close(self) -> None:
        self.stop_server()
        self.request_drain("service closed")
        self.drain(timeout=10.0)

    def summary(self) -> Dict[str, object]:
        counters = self.metrics.counters
        with self._lock:
            pending = sum(1 for j in self._jobs.values() if not j.finished)
        out: Dict[str, object] = {
            "jobs_ok": int(counters.get("service.jobs_ok", 0)),
            "jobs_error": int(counters.get("service.jobs_error", 0)),
            "jobs_recovered": int(counters.get("service.jobs_recovered", 0)),
            "rejected_queue_full": int(
                counters.get("service.rejected_queue_full", 0)),
            "rejected_draining": int(
                counters.get("service.rejected_draining", 0)),
            "client_disconnects": int(
                counters.get("service.client_disconnects", 0)),
            "breaker_state": self.breaker.state,
            "breaker_trips": self.breaker.trips,
            "pending_jobs": pending,
        }
        if self._drain_reason:
            out["drain_reason"] = self._drain_reason
        return out

    # -- metrics helpers -----------------------------------------------------

    def _inc(self, name: str, value: float = 1) -> None:
        with self._metrics_lock:
            self.metrics.inc(name, value)

    def _observe(self, name: str, value: float) -> None:
        with self._metrics_lock:
            self.metrics.observe(name, value)

    def _update_depth_gauge(self) -> None:
        with self._metrics_lock:
            self.metrics.set_gauge("service.queue_depth",
                                   self._backlog + len(self._recovered))
            self.metrics.set_gauge("service.breaker_open",
                                   int(self.breaker.is_open))

    # -- admission -----------------------------------------------------------

    def submit_job(self, sources: Dict[str, str],
                   wire_config: Optional[Dict[str, object]] = None,
                   deadline: Optional[float] = None,
                   job_id: Optional[str] = None) -> JobState:
        """Admit one job or raise typed backpressure — never block.

        Order of operations is the crash-safety contract: validate,
        check capacity, journal the submit record (durable), then
        enqueue.  A crash after the journal append can only *re-run* the
        job, never lose it; a rejection never touches the journal.
        """
        wire_config = dict(wire_config or {})
        config_from_wire(wire_config)  # typed validation before admission
        if not sources or not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in sources.items()):
            raise ServiceError("submit needs a non-empty {name: source} map")
        if deadline is None:
            deadline = self.config.default_deadline
        job_id = job_id or uuid.uuid4().hex
        plan = self.config.fault_plan
        if (plan is not None
                and plan.should_fire("deadline_expire", f"admit:{job_id}")):
            deadline = 0.0
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                return existing  # idempotent resubmit of a known id
            if self._draining.is_set():
                self._inc("service.rejected_draining")
                raise ServiceError(
                    "daemon is draining; new jobs are not admitted")
            depth = self._backlog
            if depth >= self.config.queue_size:
                self._inc("service.rejected_queue_full")
                raise QueueFullError(
                    f"job queue is full ({depth}/{self.config.queue_size}); "
                    f"retry with backoff", depth=depth,
                    limit=self.config.queue_size)
            job = JobState(job_id=job_id, sources=dict(sources),
                           wire_config=wire_config, deadline=deadline)
            self._jobs[job_id] = job
            self._backlog += 1
        try:
            with self._journal_lock:
                self.journal.submitted(job_id, job.sources, wire_config,
                                       deadline)
            # Cannot block: _backlog <= queue_size == the queue's maxsize.
            self._queue.put(job)
        except BaseException:
            with self._lock:
                self._backlog -= 1
                self._jobs.pop(job_id, None)
            raise
        self._inc("service.admitted")
        self._update_depth_gauge()
        return job

    def job(self, job_id: str) -> JobState:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    # -- executors -----------------------------------------------------------

    def _next_job(self) -> Optional[JobState]:
        with self._lock:
            if self._recovered:
                return self._recovered.popleft()
        try:
            job = self._queue.get(timeout=0.1)
        except queue.Empty:
            return None
        with self._lock:
            self._backlog -= 1
        return job  # type: ignore[return-value]

    def _executor_loop(self) -> None:
        while True:
            job = self._next_job()
            if job is None:
                if self._draining.is_set():
                    with self._lock:
                        idle = not self._recovered and self._queue.empty()
                    if idle:
                        return
                continue
            self._run_job(job)
            self._update_depth_gauge()

    def _build_config_for(self, job: JobState,
                          breaker_open: bool):
        config = config_from_wire(job.wire_config)
        if breaker_open:
            # Serial-uncached: the always-correct slow path — no forked
            # workers to crash, no cache entries to corrupt or tear.
            config.workers = 1
            config.incremental = False
        else:
            config.workers = self.config.build_workers
            config.incremental = self.config.incremental
            # Back-to-back jobs reuse one forked worker pool instead of
            # paying a pool spawn per job; a crashed pool is retired and
            # the next job forks a fresh one.
            config.persistent_workers = True
        config.cache_dir = self.cache_dir
        config.chunk_timeout = self.config.chunk_timeout
        config.fault_plan = self.config.fault_plan
        config.cancel_scope = job.scope
        return config

    def _run_job(self, job: JobState) -> None:
        start = time.monotonic()
        plan = self.config.fault_plan
        if (plan is not None
                and plan.should_fire("sigterm_midphase", f"job:{job.job_id}")):
            # A drain beginning mid-job: this job still finishes (drain
            # never abandons in-flight work) but nothing new is admitted.
            self.request_drain("injected SIGTERM mid-phase")
        job.status = "running"
        job.attempts += 1
        job.breaker_open = self.breaker.is_open
        job.scope = CancelScope(deadline_seconds=job.deadline,
                                label=job.job_id)
        with self._journal_lock:
            self.journal.started(job.job_id, job.attempts)
        infra_failure = False
        try:
            config = self._build_config_for(job, job.breaker_open)
            result = build_program(job.sources, config)
            report = result.report
            infra_failure = any(d.kind in INFRA_DEGRADATIONS
                                for d in report.degradations)
            self._finish(job, "ok", image=image_summary(result.image),
                         report=report.as_dict())
        except ReproError as exc:
            infra_failure = isinstance(exc, (WorkerCrashError,
                                             CacheCorruptionError))
            self._finish(job, "error", error=error_to_wire(exc))
        except BaseException as exc:  # noqa: BLE001 — executor must survive
            # An unexpected exception still yields a *typed* outcome; the
            # invariant forbids silent executor death as much as hangs.
            infra_failure = True
            self._finish(job, "error", error=error_to_wire(exc))
        finally:
            self.breaker.record(infra_failure)
            elapsed = time.monotonic() - start
            self._observe("service.job_seconds", elapsed)
            self._update_depth_gauge()
            self._maintain()

    def _finish(self, job: JobState, status: str,
                image: Optional[Dict[str, object]] = None,
                report: Optional[Dict[str, object]] = None,
                error: Optional[Dict[str, object]] = None) -> None:
        job.image = image or {}
        job.report = report or {}
        job.error = error or {}
        job.status = status
        payload: Dict[str, object] = {
            "attempts": job.attempts,
            "breaker_open": job.breaker_open,
        }
        if image:
            payload["image"] = image
        if report:
            payload["report"] = report
        if error:
            payload["error"] = error
        with self._journal_lock:
            self.journal.done(job.job_id, status, payload)
        with self._lock:
            self._remember_done(job.job_id)
        self._inc(f"service.jobs_{status}")
        job.done.set()

    def _remember_done(self, job_id: str) -> None:
        """Bound the in-memory finished-job window (journal keeps more)."""
        self._done_order.append(job_id)
        while len(self._done_order) > self.config.done_jobs_kept:
            old = self._done_order.popleft()
            job = self._jobs.get(old)
            if job is not None and job.finished:
                self._jobs.pop(old, None)

    def _maintain(self) -> None:
        """Post-job housekeeping: bounded cache, compacted journal."""
        if self.config.max_cache_bytes is not None:
            self.maintenance_cache.prune(
                self.config.max_cache_bytes,
                quarantine_max_bytes=self.config.quarantine_max_bytes)
            stats = self.maintenance_cache.stats
            with self._metrics_lock:
                self.metrics.set_gauge("service.cache_evictions",
                                       stats.evictions)
                self.metrics.set_gauge("service.cache_evicted_bytes",
                                       stats.evicted_bytes)
                self.metrics.set_gauge("service.cache_quarantine_reclaimed",
                                       stats.quarantine_reclaimed)
        self._jobs_since_checkpoint += 1
        if self._jobs_since_checkpoint >= self.config.checkpoint_every:
            self._jobs_since_checkpoint = 0
            with self._journal_lock:
                self.journal.checkpoint()

    # -- wire layer ----------------------------------------------------------

    def handle_request(self, request: Dict[str, object]) -> Dict[str, object]:
        """One request frame in, one response frame out (may block for
        ``submit`` with ``wait``)."""
        op = request.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pong": True, "version": 1}
            if op == "status":
                return {"ok": True, "summary": self.summary(),
                        "metrics": self.metrics.as_dict()}
            if op == "submit":
                return self._handle_submit(request)
            if op == "query":
                job = self.job(str(request.get("id", "")))
                return self._job_response(job)
            if op == "drain":
                self.request_drain("drain frame received")
                return {"ok": True, "summary": self.summary()}
            raise ServiceError(f"unknown op {op!r}")
        except Exception as exc:  # noqa: BLE001 — every reply is typed
            response: Dict[str, object] = {"ok": False}
            response.update(error_to_wire(exc))
            return response

    def _handle_submit(self, request: Dict[str, object]) -> Dict[str, object]:
        sources = request.get("sources")
        if not isinstance(sources, dict):
            raise ServiceError("submit frame needs a 'sources' object")
        deadline = request.get("deadline")
        if deadline is not None:
            try:
                deadline = float(deadline)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise ServiceError(f"bad deadline {deadline!r}")
        # No coercion: submit_job's validation rejects non-string source
        # values with a typed error instead of silently stringifying them.
        job = self.submit_job(
            sources,
            request.get("config") if isinstance(request.get("config"), dict)
            else None,
            deadline=deadline,
            job_id=(str(request["id"]) if request.get("id") else None))
        if not request.get("wait", True):
            return {"ok": True, "job": job.view()}
        budget = (job.deadline if job.deadline is not None
                  else (self.config.default_deadline or 300.0))
        if not job.done.wait(timeout=budget + WAIT_GRACE_SECONDS):
            raise ServiceError(
                f"job {job.job_id} still running past its deadline plus "
                f"{WAIT_GRACE_SECONDS:g}s grace; query it later")
        return self._job_response(job)

    def _job_response(self, job: JobState) -> Dict[str, object]:
        if job.status == "error":
            response: Dict[str, object] = {"ok": False, "job": job.view()}
            response.update(job.error or
                            {"error": "BuildError", "message": "job failed"})
            return response
        return {"ok": True, "job": job.view()}

    # -- socket server -------------------------------------------------------

    def start_server(self, host: str = "127.0.0.1",
                     port: int = 0) -> "tuple[str, int]":
        import socketserver

        service = self

        class _Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:  # noqa: D401
                try:
                    request = recv_frame(self.rfile)
                except ProtocolError:
                    service._inc("service.client_disconnects")
                    return
                # The socket itself is open to any local user; the shared
                # secret from the 0600 endpoint file is what authorises a
                # frame.  Checked before *any* dispatch — an unauthorised
                # peer cannot submit, query other users' jobs, or drain.
                if request.get("auth") != service.auth_token:
                    service._inc("service.rejected_auth")
                    rejection: Dict[str, object] = {"ok": False}
                    rejection.update(error_to_wire(ServiceError(
                        "authentication failed: frame is missing the "
                        "daemon's token (clients read it from endpoint.json "
                        "in the state dir)")))
                    try:
                        send_frame(self.wfile, rejection)
                    except OSError:
                        service._inc("service.client_disconnects")
                    return
                response = service.handle_request(request)
                plan = service.config.fault_plan
                site = (f"reply:{request.get('id') or request.get('op')}")
                if (plan is not None
                        and plan.should_fire("client_disconnect", site)):
                    # Injected mid-stream drop: the admitted job (if any)
                    # runs to completion and stays queryable; only this
                    # connection dies.
                    service._inc("service.client_disconnects")
                    return
                try:
                    send_frame(self.wfile, response)
                except OSError:
                    service._inc("service.client_disconnects")
                if request.get("op") == "drain":
                    shutdown = threading.Thread(
                        target=self.server.shutdown, daemon=True)
                    shutdown.start()

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((host, port), _Handler)
        bound_host, bound_port = self._server.server_address[:2]
        self._write_endpoint(bound_host, bound_port)
        self._server_thread = threading.Thread(
            target=self._server.serve_forever, name="repro-serve",
            daemon=True)
        self._server_thread.start()
        return str(bound_host), int(bound_port)

    def stop_server(self) -> None:
        if self._server is not None:
            try:
                self._server.shutdown()
                self._server.server_close()
            except Exception:
                pass
            self._server = None
        try:
            os.unlink(self.endpoint_path(self.config.state_dir))
        except OSError:
            pass

    @staticmethod
    def endpoint_path(state_dir: str) -> str:
        return os.path.join(state_dir, "endpoint.json")

    def _write_endpoint(self, host: str, port: int) -> None:
        path = self.endpoint_path(self.config.state_dir)
        tmp = path + ".tmp"
        # 0600 from birth: the endpoint file carries the auth token, so
        # whoever can read it (the state dir's owner) is exactly who may
        # talk to the daemon.
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump({"host": host, "port": port, "pid": os.getpid(),
                       "token": self.auth_token}, fh)
        os.replace(tmp, path)

    def run(self, host: str = "127.0.0.1", port: int = 0,
            poll: float = 0.2) -> Dict[str, object]:
        """Blocking serve loop: start the socket, wait for a drain
        request (signal handler or ``drain`` frame), then drain and
        return the typed summary."""
        self.start_server(host, port)
        try:
            while not self._draining.is_set():
                time.sleep(poll)
        finally:
            self.stop_server()
        return self.drain()
