"""Long-lived build service: daemon, wire protocol, client, job journal.

The service layer extends the pipeline's fault-tolerance invariant (any
injected fault ⇒ bit-identical image or typed error, never a hang or a
silently different binary) across process lifetimes: a bounded job queue
with typed backpressure, per-job deadlines with cooperative cancellation,
an append-only crash-recovery journal, graceful drain on SIGTERM/SIGINT,
and a circuit breaker that degrades to serial-uncached builds when
infrastructure failure rates spike.
"""

from repro.service.client import ServiceClient, SubmitOutcome
from repro.service.daemon import BuildService, CircuitBreaker, ServiceConfig
from repro.service.journal import JobJournal, ReplayState
from repro.service.protocol import (
    config_from_wire,
    config_to_wire,
    error_to_wire,
    image_summary,
    recv_frame,
    send_frame,
    wire_to_error,
)

__all__ = [
    "BuildService",
    "CircuitBreaker",
    "JobJournal",
    "ReplayState",
    "ServiceClient",
    "ServiceConfig",
    "SubmitOutcome",
    "config_from_wire",
    "config_to_wire",
    "error_to_wire",
    "image_summary",
    "recv_frame",
    "send_frame",
    "wire_to_error",
]
