"""Client for the build daemon (`repro submit` and the test harnesses).

Every failure mode is typed: no daemon ⇒
:class:`~repro.errors.DaemonUnavailableError`; the daemon dropped the
connection mid-stream ⇒ :class:`~repro.errors.ProtocolError`; the daemon
answered with an error ⇒ the *same* exception class the daemon raised
(``QueueFullError``, ``DeadlineExpiredError``, ``SemaError``, ...),
re-raised locally via :func:`repro.service.protocol.wire_to_error`.  A
caller therefore handles a remote build exactly like a local
``build_program`` call — the service layer adds no new untyped failure
surface.
"""

from __future__ import annotations

import json
import os
import socket
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import DaemonUnavailableError, ProtocolError, ServiceError
from repro.pipeline.report import BuildReport
from repro.service.protocol import recv_frame, send_frame, wire_to_error


@dataclass
class SubmitOutcome:
    """A finished (or still-queued, with ``wait=False``) remote job."""

    job_id: str
    status: str
    recovered: bool = False
    breaker_open: bool = False
    image: Dict[str, object] = field(default_factory=dict)
    report: Optional[BuildReport] = None

    @classmethod
    def from_view(cls, view: Dict[str, object]) -> "SubmitOutcome":
        report_data = view.get("report")
        return cls(
            job_id=str(view.get("id", "")),
            status=str(view.get("status", "")),
            recovered=bool(view.get("recovered", False)),
            breaker_open=bool(view.get("breaker_open", False)),
            image=dict(view.get("image") or {}),
            report=(BuildReport.from_dict(report_data)
                    if isinstance(report_data, dict) else None))


def read_endpoint(state_dir: str) -> Tuple[str, int, Optional[str]]:
    """Daemon address + auth token from its state dir; typed error when
    absent.  The endpoint file is written 0600 by the daemon: being able
    to read the token is what authorises talking to the socket."""
    path = os.path.join(state_dir, "endpoint.json")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        token = data.get("token")
        return (str(data["host"]), int(data["port"]),
                str(token) if token is not None else None)
    except (OSError, ValueError, KeyError) as exc:
        raise DaemonUnavailableError(
            f"no daemon endpoint at {path} (is `repro serve` running "
            f"with this --state-dir?): {exc}") from exc


class ServiceClient:
    """One daemon address; a fresh connection per request (the protocol
    is single-shot: one frame out, one frame back)."""

    def __init__(self, host: Optional[str] = None, port: Optional[int] = None,
                 state_dir: Optional[str] = None, timeout: float = 300.0,
                 auth_token: Optional[str] = None):
        if host is None or port is None:
            if state_dir is None:
                raise ServiceError(
                    "ServiceClient needs host+port or a state_dir")
            host, port, token = read_endpoint(state_dir)
            if auth_token is None:
                auth_token = token
        elif auth_token is None and state_dir is not None:
            try:
                _, _, auth_token = read_endpoint(state_dir)
            except DaemonUnavailableError:
                pass  # explicit host/port wins; token stays unset
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.auth_token = auth_token

    def _authorized(self, request: Dict[str, object]) -> Dict[str, object]:
        if self.auth_token is not None:
            request["auth"] = self.auth_token
        return request

    # -- plumbing ------------------------------------------------------------

    def _connect(self) -> socket.socket:
        try:
            return socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
        except OSError as exc:
            raise DaemonUnavailableError(
                f"cannot reach daemon at {self.host}:{self.port}: "
                f"{exc}") from exc

    def _roundtrip(self, request: Dict[str, object]) -> Dict[str, object]:
        request = self._authorized(request)
        with self._connect() as sock:
            rfile = sock.makefile("rb")
            wfile = sock.makefile("wb")
            try:
                send_frame(wfile, request)
            except OSError as exc:
                raise ProtocolError(f"send failed: {exc}") from exc
            try:
                response = recv_frame(rfile)
            except socket.timeout as exc:
                raise ProtocolError(
                    f"no response within {self.timeout:g}s") from exc
            except OSError as exc:
                raise ProtocolError(f"receive failed: {exc}") from exc
        if not response.get("ok", False):
            raise wire_to_error(response)
        return response

    # -- operations ----------------------------------------------------------

    def ping(self) -> bool:
        return bool(self._roundtrip({"op": "ping"}).get("pong"))

    def status(self) -> Dict[str, object]:
        response = self._roundtrip({"op": "status"})
        return {"summary": response.get("summary", {}),
                "metrics": response.get("metrics", {})}

    def submit(self, sources: Dict[str, str],
               config: Optional[Dict[str, object]] = None,
               deadline: Optional[float] = None,
               job_id: Optional[str] = None,
               wait: bool = True) -> SubmitOutcome:
        """Submit a build; returns the outcome or raises the daemon's
        typed error (including :class:`~repro.errors.QueueFullError`
        backpressure)."""
        request: Dict[str, object] = {"op": "submit", "sources": dict(sources),
                                      "wait": wait}
        if config:
            request["config"] = dict(config)
        if deadline is not None:
            request["deadline"] = deadline
        if job_id:
            request["id"] = job_id
        response = self._roundtrip(request)
        view = response.get("job")
        if not isinstance(view, dict):
            raise ProtocolError("submit response carried no job view")
        return SubmitOutcome.from_view(view)

    def submit_abandoned(self, sources: Dict[str, str],
                         config: Optional[Dict[str, object]] = None,
                         deadline: Optional[float] = None,
                         job_id: Optional[str] = None) -> str:
        """Send a submit frame and hang up without reading the reply —
        the chaos harness's client-disconnect-mid-stream fault.  The
        daemon still admits and finishes the job; returns the job id so
        the test can :meth:`query` it later."""
        job_id = job_id or os.urandom(8).hex()
        request: Dict[str, object] = {"op": "submit", "sources": dict(sources),
                                      "wait": True, "id": job_id}
        if config:
            request["config"] = dict(config)
        if deadline is not None:
            request["deadline"] = deadline
        with self._connect() as sock:
            wfile = sock.makefile("wb")
            send_frame(wfile, self._authorized(request))
            # No read: the socket closes on context exit, mid-stream from
            # the daemon's point of view.
        return job_id

    def query(self, job_id: str) -> SubmitOutcome:
        response = self._roundtrip({"op": "query", "id": job_id})
        view = response.get("job")
        if not isinstance(view, dict):
            raise ProtocolError("query response carried no job view")
        return SubmitOutcome.from_view(view)

    def drain(self) -> Dict[str, object]:
        """Ask the daemon to drain; returns its pre-drain summary."""
        response = self._roundtrip({"op": "drain"})
        return dict(response.get("summary") or {})
