"""Command-line interface: build, run, inspect, serve, and reproduce.

    python -m repro build app.sw [--preset min-size|fast-build|balanced]
    python -m repro build app.sw [--rounds 5] [--pipeline wholeprogram]
    python -m repro build app.sw --target arm64 --target thumb2c
    python -m repro size app.sw [--json] [--baseline size_baseline.json]
    python -m repro run app.sw [--timing]
    python -m repro patterns app.sw [--top 10]
    python -m repro disasm app.sw [--function NAME]
    python -m repro experiments [name ...] [--scale small]
    python -m repro serve --state-dir DIR [--queue-size N] [--deadline S]
    python -m repro submit app.sw --state-dir DIR [--deadline S]
    python -m repro status --state-dir DIR

Multiple source files become one module each (module name = file stem).
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import time
from contextlib import contextmanager
from typing import Dict, List

from repro.errors import DiagnosticError, ReproError


def _load_sources(paths: List[str]) -> Dict[str, str]:
    sources: Dict[str, str] = {}
    for path in paths:
        name = os.path.splitext(os.path.basename(path))[0]
        with open(path, "r", encoding="utf-8") as fh:
            sources[name] = fh.read()
    return sources


def _fault_plan(args):
    from repro.pipeline import FaultPlan

    if not getattr(args, "inject_faults", None):
        return None
    return FaultPlan.parse(args.inject_faults)


@contextmanager
def _obs_session(args):
    """Activate a tracer for the command when any observability flag is
    set; on the way out write ``--trace-out`` / ``--metrics-out`` files
    and print the ``--profile`` table.

    Exports run in a ``finally`` so a degraded or failed build still
    leaves its partial trace behind (often the most interesting one).
    """
    from repro import obs

    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    profile = getattr(args, "profile", False)
    if not (trace_out or metrics_out or profile):
        yield None
        return
    tracer = obs.Tracer()
    try:
        with obs.use_tracer(tracer):
            yield tracer
    finally:
        if trace_out:
            obs.write_chrome_trace(tracer, trace_out)
            print(f"trace:     {trace_out} (load in chrome://tracing or "
                  f"https://ui.perfetto.dev)", file=sys.stderr)
        if metrics_out:
            obs.write_metrics(tracer, metrics_out)
            print(f"metrics:   {metrics_out}", file=sys.stderr)
        if profile:
            for line in obs.profile_lines(tracer):
                print(line)


#: (argparse attribute, BuildConfig field) — flags default to None so an
#: absent flag falls through to the preset (or built-in default): the
#: documented ``explicit > preset > default`` precedence.
_CLI_KNOBS = (
    ("pipeline", "pipeline"), ("rounds", "outline_rounds"),
    ("target", "target"), ("merge", "merge_mode"),
    ("strip", "strip"),
    ("data_layout", "data_layout"), ("layout", "layout"),
    ("layout_seed", "layout_seed"), ("profile_in", "profile_path"),
    ("workers", "workers"), ("incremental", "incremental"),
    ("cache_dir", "cache_dir"), ("verify_image", "verify_image"),
    ("fail_fast", "fail_fast"),
)


def _target_args(args) -> List[str]:
    """The ``--target`` values (``action="append"`` yields a list)."""
    value = getattr(args, "target", None)
    if not value:
        return []
    return list(value) if isinstance(value, list) else [value]


def _config_from_args(args, knob_table=_CLI_KNOBS):
    from repro.pipeline import BuildConfig

    # Multi---target slicing is handled by cmd_build/cmd_size (which null
    # out args.target first); everywhere else a single value is required.
    if isinstance(getattr(args, "target", None), list):
        if len(args.target) > 1:
            raise ReproError("this command takes one --target; multi-target "
                             "slicing is a 'build'/'size' feature")
        args.target = args.target[0]
    knobs = {config_field: getattr(args, attr)
             for attr, config_field in knob_table
             if getattr(args, attr, None) is not None}
    plan = _fault_plan(args)
    if plan is not None:
        knobs["fault_plan"] = plan
    preset = getattr(args, "preset", None)
    if preset is not None:
        return BuildConfig.preset(preset, **knobs)
    # Historical CLI default: build/run outline unless told otherwise.
    knobs.setdefault("outline_rounds", 5)
    return BuildConfig(**knobs)


def _build(args):
    from repro import api

    config = _config_from_args(args)
    return api.build(_load_sources(args.sources), config), config


def _build_sliced(args):
    """Build for every --target: a sliced multi-target build (one shared
    frontend) when more than one is given, else the normal single build.
    Returns ``({target: BuildResult}, config)``."""
    from repro import api

    targets = _target_args(args)
    if len(targets) > 1:
        args.target = None
        config = _config_from_args(args)
        results = api.build(_load_sources(args.sources), config,
                            targets=targets)
        return results, config
    result, config = _build(args)
    return {str(config.target): result}, config


def _print_build_summary(name: str, result, config) -> None:
    sizes = result.sizes
    print(f"pipeline:  {config.pipeline}, outline rounds: "
          f"{config.outline_rounds}, target: {name}")
    print(f"code:      {sizes.text_bytes} bytes ({sizes.num_instrs} instructions)")
    print(f"data:      {sizes.data_bytes} bytes")
    print(f"binary:    {sizes.binary_bytes} bytes ({sizes.num_functions} functions)")
    for stat in result.outline_stats:
        print(f"  round {stat.round_no}: {stat.sequences_outlined} sequences "
              f"-> {stat.functions_created} outlined functions, "
              f"{stat.bytes_saved} bytes saved (cumulative)")
    for line in result.report.summary_lines():
        print(line)


def cmd_build(args) -> int:
    with _obs_session(args):
        results, config = _build_sliced(args)
    multi = len(results) > 1
    for i, (name, result) in enumerate(results.items()):
        if multi:
            if i:
                print()
            print(f"-- slice {name} " + "-" * max(1, 58 - len(name)))
        _print_build_summary(name, result, config)
    return 0


def cmd_size(args) -> int:
    import json

    from repro.link import sizereport

    with _obs_session(args):
        results, _config = _build_sliced(args)
    report = sizereport.build_size_report(results)
    payload = sizereport.canonical_json(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
        print(f"size report: {args.out}", file=sys.stderr)
    if args.json:
        print(payload)
    else:
        for line in sizereport.render_report(report):
            print(line)
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        lines, failures = sizereport.diff_reports(
            baseline, report, max_text_growth_pct=args.max_text_growth_pct)
        print(f"baseline:  {args.baseline} "
              f"(gate: +{args.max_text_growth_pct:g}% __text)")
        for line in lines:
            print(f"  {line}")
        if failures:
            print(f"error: size regression past the {args.max_text_growth_pct:g}% "
                  f"gate:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
    return 0


def cmd_run(args) -> int:
    from repro.pipeline import run_build
    from repro.sim.profile import ProfileCollector
    from repro.sim.timing import DeviceConfig, TimingModel

    collector = ProfileCollector() if args.profile_out else None
    with _obs_session(args):
        result, _ = _build(args)
        timing = TimingModel(DeviceConfig()) if args.timing else None
        start = time.time()
        execution = run_build(result, timing=timing,
                              max_steps=args.max_steps,
                              profile=collector)
    if collector is not None:
        profile = collector.finalize(result.image)
        digest = profile.save(args.profile_out)
        print(f"profile:   {args.profile_out} ({profile.num_edges} call "
              f"edges, sha256 {digest[:12]})", file=sys.stderr)
    for line in execution.output:
        print(line)
    if args.stats:
        print(f"-- {execution.steps} instructions retired in "
              f"{time.time() - start:.2f}s host time", file=sys.stderr)
        if execution.cycles is not None:
            print(f"-- {execution.cycles} simulated cycles", file=sys.stderr)
        if execution.leaked:
            print(f"-- LEAKED {len(execution.leaked)} objects",
                  file=sys.stderr)
            return 1
    return 0


def cmd_patterns(args) -> int:
    from repro.analysis.patterns import mine_build_patterns
    from repro.outliner.stats import pattern_census

    with _obs_session(args):
        result, _ = _build(args)
    stats = mine_build_patterns(result)
    census = pattern_census(stats)
    print(f"{census['num_patterns']} profitable patterns, "
          f"{census['num_candidates']} candidates, "
          f"longest {census['max_length']} instructions")
    for stat in stats[:args.top]:
        print(f"\n#{stat.pattern_id}  x{stat.num_candidates}  "
              f"len {stat.length}  [{stat.outline_class.value}]  "
              f"saves {stat.benefit_bytes}B")
        for line in stat.rendered:
            print(f"    {line}")
        if stat.functions:
            print(f"    in: {', '.join(stat.functions)}")
    return 0


def cmd_disasm(args) -> int:
    with _obs_session(args):
        result, _ = _build(args)
    for module in result.machine_modules:
        for fn in module.functions:
            if args.function and args.function not in fn.name:
                continue
            print(fn.render())
            print()
    return 0


def cmd_serve(args) -> int:
    from repro.service import BuildService, ServiceConfig

    config = ServiceConfig(
        state_dir=args.state_dir,
        cache_dir=args.cache_dir,
        queue_size=args.queue_size,
        job_workers=args.job_workers,
        build_workers=args.build_workers,
        default_deadline=args.deadline if args.deadline > 0 else None,
        breaker_threshold=args.breaker_threshold,
        breaker_window=args.breaker_window,
        breaker_cooldown=args.breaker_cooldown,
        max_cache_bytes=args.max_cache_bytes,
        fault_plan=_fault_plan(args))
    service = BuildService(config)
    service.start()

    def _drain_signal(signum, frame):  # noqa: ARG001
        service.request_drain(f"signal {signum}")

    signal.signal(signal.SIGTERM, _drain_signal)
    signal.signal(signal.SIGINT, _drain_signal)
    host, port = service.start_server(args.host, args.port)
    endpoint = service.endpoint_path(args.state_dir)
    print(f"serving:   {host}:{port} (endpoint file {endpoint})", flush=True)
    if service.recovered_count:
        print(f"recovered: {service.recovered_count} journaled job(s) "
              f"re-admitted", flush=True)
    try:
        while not service._draining.is_set():
            time.sleep(0.2)
    finally:
        service.stop_server()
        summary = service.drain(timeout=args.drain_timeout)
        print("drained:   " + ", ".join(
            f"{key}={value}" for key, value in sorted(summary.items())))
    return 0


#: The submit subcommand ships only fingerprint-bearing knobs over the
#: wire; build-speed knobs (workers, cache) are the daemon's to choose.
_SUBMIT_KNOBS = (
    ("pipeline", "pipeline"), ("rounds", "outline_rounds"),
    ("target", "target"), ("merge", "merge_mode"),
    ("data_layout", "data_layout"), ("verify_image", "verify_image"),
)


def _submit_config(args) -> Dict[str, object]:
    config = _config_from_args(args, knob_table=_SUBMIT_KNOBS)
    return {"pipeline": config.pipeline,
            "outline_rounds": config.outline_rounds,
            "target": config.target, "merge_mode": config.merge_mode,
            "data_layout": config.data_layout,
            "verify_image": config.verify_image}


def cmd_submit(args) -> int:
    from repro import api

    client = api.connect(state_dir=args.state_dir, host=args.host_opt,
                         port=args.port_opt, timeout=args.client_timeout)
    outcome = client.submit(_load_sources(args.sources),
                            config=_submit_config(args),
                            deadline=args.deadline if args.deadline > 0
                            else None,
                            wait=not args.no_wait)
    print(f"job:       {outcome.job_id} [{outcome.status}]"
          + (" (recovered)" if outcome.recovered else "")
          + (" (breaker open: serial-uncached)" if outcome.breaker_open
             else ""))
    if outcome.image:
        image = outcome.image
        print(f"code:      {image.get('text_bytes')} bytes "
              f"({image.get('num_instrs')} instructions)")
        print(f"data:      {image.get('data_bytes')} bytes")
        print(f"binary:    {image.get('binary_bytes')} bytes "
              f"({image.get('num_functions')} functions)")
        print(f"text sha:  {image.get('text_sha256')}")
    if outcome.report is not None:
        # The same summary (including `degraded:` lines) the one-shot
        # CLI prints — DegradationEvents travel the wire.
        for line in outcome.report.summary_lines():
            print(line)
    return 0


def cmd_status(args) -> int:
    from repro import api

    client = api.connect(state_dir=args.state_dir, host=args.host_opt,
                         port=args.port_opt, timeout=args.client_timeout)
    status = client.status()
    for key, value in sorted(status["summary"].items()):
        print(f"{key}: {value}")
    gauges = status["metrics"].get("gauges", {})
    for name in ("service.queue_depth", "service.breaker_open"):
        if name in gauges:
            print(f"{name}: {gauges[name]}")
    return 0


def cmd_experiments(args) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    wanted = args.names or list(ALL_EXPERIMENTS)
    for name in wanted:
        module = ALL_EXPERIMENTS.get(name)
        if module is None:
            print(f"unknown experiment {name!r}; available: "
                  f"{', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
            return 1
        print("=" * 72)
        print(f"experiment: {name}")
        print("=" * 72)
        kwargs = {}
        if "scale" in module.run.__code__.co_varnames:
            kwargs["scale"] = args.scale
        print(module.format_report(module.run(**kwargs)))
        print()
    return 0


def _add_preset_arg(parser) -> None:
    from repro.pipeline.config import PRESETS

    parser.add_argument("--preset", default=None,
                        choices=tuple(sorted(PRESETS)),
                        help="named configuration to start from "
                             "(min-size: what the paper shipped; "
                             "fast-build: incremental inner-loop builds; "
                             "balanced: in between).  Explicit flags "
                             "override preset fields.")


def _add_build_args(parser) -> None:
    # Flags default to None (= "not given") so _config_from_args can tell
    # an explicit flag from an absent one; absent flags fall through to
    # the --preset (if any), then to the BuildConfig defaults.
    parser.add_argument("sources", nargs="+", help="Swiftlet source files")
    _add_preset_arg(parser)
    parser.add_argument("--rounds", type=int, default=None,
                        help="machine outlining rounds (default 5)")
    parser.add_argument("--pipeline", default=None,
                        choices=("wholeprogram", "default"))
    from repro.target import available_targets
    parser.add_argument("--target", default=None, action="append",
                        choices=available_targets(),
                        help="target specification (instruction widths, "
                             "alignment, calling convention); default "
                             "$REPRO_TARGET or arm64.  'build' and 'size' "
                             "accept the flag repeatedly for an "
                             "app-thinning sliced build (one shared "
                             "frontend, one slice per target)")
    from repro.pipeline.config import MERGE_MODES, STRIP_MODES
    parser.add_argument("--merge", default=None,
                        choices=MERGE_MODES,
                        help="whole-program function merging: off, exact "
                             "(bit-identical dedup), or optimistic "
                             "(similarity merging with priced thunks); "
                             "default $REPRO_MERGE or off")
    parser.add_argument("--strip", default=None,
                        choices=STRIP_MODES,
                        help="link-time whole-program stripping: remove "
                             "machine functions unreachable from the entry "
                             "symbol right before the link (default off; "
                             "on in the min-size preset)")
    parser.add_argument("--data-layout", default=None,
                        choices=("module-order", "interleaved"))
    from repro.link.funclayout import LAYOUT_MODES
    parser.add_argument("--layout", default=None, choices=LAYOUT_MODES,
                        help="function ordering in __text: source (link "
                             "order), callgraph-c3 (profile-guided "
                             "clustering; uses --profile-in or a static "
                             "call-site census), random (seeded control)")
    parser.add_argument("--layout-seed", type=int, default=None,
                        help="seed for --layout random (default 0)")
    parser.add_argument("--profile-in", default=None, metavar="PATH",
                        help="layout profile from a previous "
                             "'run --profile-out' feeding callgraph-c3 "
                             "edge weights")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for per-module compilation "
                             "(1 = serial, 0 = one per core)")
    parser.add_argument("--incremental", action="store_true", default=None,
                        help="reuse the content-addressed build cache")
    parser.add_argument("--cache-dir", default=None,
                        help="cache location (default: $REPRO_CACHE_DIR "
                             "or a tempdir)")
    parser.add_argument("--verify-image", dest="verify_image",
                        action="store_true", default=None,
                        help="run the post-link binary verifier (default)")
    parser.add_argument("--no-verify-image", dest="verify_image",
                        action="store_false",
                        help="skip the post-link binary verifier")
    parser.add_argument("--fail-fast", action="store_true", default=None,
                        help="raise on the first worker failure instead of "
                             "retrying/degrading (for CI)")
    parser.add_argument("--inject-faults", default=None, metavar="SPEC",
                        help="seeded fault injection, e.g. "
                             "'seed=7,crash=0.3,corrupt=1' (keys: seed, "
                             "crash, hang, pickle, corrupt, torn, nofork)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a Chrome trace_event JSON of the build "
                             "(load in chrome://tracing or Perfetto)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the build's metrics (counters/gauges/"
                             "histograms) as JSON")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-span/per-metric summary table "
                             "after the command")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="compile and report sizes")
    _add_build_args(p_build)
    p_build.set_defaults(func=cmd_build)

    p_run = sub.add_parser("run", help="compile and execute")
    _add_build_args(p_run)
    p_run.add_argument("--timing", action="store_true",
                       help="enable the cycle timing model")
    p_run.add_argument("--stats", action="store_true",
                       help="print execution statistics to stderr")
    p_run.add_argument("--max-steps", type=int, default=100_000_000)
    p_run.add_argument("--profile-out", default=None, metavar="PATH",
                       help="record a layout profile (call-graph edge "
                            "counts) of this run for 'build --layout "
                            "callgraph-c3 --profile-in PATH'")
    p_run.set_defaults(func=cmd_run)

    p_size = sub.add_parser("size",
                            help="per-module size breakdown and the "
                                 "baseline-diff regression gate")
    _add_build_args(p_size)
    p_size.add_argument("--json", action="store_true",
                        help="print the canonical JSON report instead of "
                             "the table")
    p_size.add_argument("--out", default=None, metavar="PATH",
                        help="also write the canonical JSON report here")
    p_size.add_argument("--baseline", default=None, metavar="PATH",
                        help="diff against this committed size-report JSON; "
                             "exits 1 on __text growth past the gate")
    p_size.add_argument("--max-text-growth-pct", type=float, default=1.0,
                        help="per-target __text growth allowed over the "
                             "baseline before failing (default 1.0)")
    p_size.set_defaults(func=cmd_size)

    p_pat = sub.add_parser("patterns",
                           help="mine repeated machine patterns (§IV)")
    _add_build_args(p_pat)
    p_pat.add_argument("--top", type=int, default=8)
    p_pat.set_defaults(func=cmd_patterns)

    p_dis = sub.add_parser("disasm", help="print generated machine code")
    _add_build_args(p_dis)
    p_dis.add_argument("--function", help="filter by function-name substring")
    p_dis.set_defaults(func=cmd_disasm)

    p_exp = sub.add_parser("experiments",
                           help="regenerate the paper's tables/figures")
    p_exp.add_argument("names", nargs="*",
                       help="experiment names (default: all)")
    p_exp.add_argument("--scale", default="tiny",
                       choices=("tiny", "small", "medium", "large"))
    p_exp.set_defaults(func=cmd_experiments)

    p_serve = sub.add_parser("serve", help="run the build daemon")
    p_serve.add_argument("--state-dir", required=True,
                         help="journal + endpoint + default cache location")
    p_serve.add_argument("--cache-dir", default=None,
                         help="shared build cache (default: state-dir/cache)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="0 = ephemeral; the bound port is written to "
                              "state-dir/endpoint.json")
    p_serve.add_argument("--queue-size", type=int, default=16,
                         help="bounded admission queue; a full queue "
                              "rejects with QueueFullError (default 16)")
    p_serve.add_argument("--job-workers", type=int, default=2,
                         help="concurrent jobs (default 2)")
    p_serve.add_argument("--build-workers", type=int, default=2,
                         help="forked compile workers per job (default 2)")
    p_serve.add_argument("--deadline", type=float, default=120.0,
                         help="default per-job deadline seconds "
                              "(0 disables; default 120)")
    p_serve.add_argument("--drain-timeout", type=float, default=60.0,
                         help="seconds to wait for in-flight jobs on drain")
    p_serve.add_argument("--breaker-threshold", type=int, default=3)
    p_serve.add_argument("--breaker-window", type=int, default=10)
    p_serve.add_argument("--breaker-cooldown", type=int, default=5)
    p_serve.add_argument("--max-cache-bytes", type=int, default=None,
                         help="LRU-prune the shared cache to this size "
                              "after every job")
    p_serve.add_argument("--inject-faults", default=None, metavar="SPEC",
                         help="seeded service+pipeline fault injection "
                              "(adds keys: disconnect, jtorn, deadline, "
                              "sigterm)")
    p_serve.set_defaults(func=cmd_serve)

    def _add_client_args(p) -> None:
        p.add_argument("--state-dir", default=None,
                       help="daemon state dir (reads host/port and the "
                            "auth token from endpoint.json)")
        p.add_argument("--host", dest="host_opt", default=None,
                       help="daemon host; pair with --state-dir so the "
                            "auth token can still be read")
        p.add_argument("--port", dest="port_opt", type=int, default=None)
        p.add_argument("--client-timeout", type=float, default=300.0,
                       help="socket timeout waiting for the daemon")

    from repro.pipeline.config import MERGE_MODES
    from repro.target import available_targets

    p_submit = sub.add_parser("submit",
                              help="submit a build to a running daemon")
    p_submit.add_argument("sources", nargs="+", help="Swiftlet source files")
    _add_preset_arg(p_submit)
    p_submit.add_argument("--rounds", type=int, default=None)
    p_submit.add_argument("--pipeline", default=None,
                          choices=("wholeprogram", "default"))
    p_submit.add_argument("--target", default=None,
                          choices=available_targets())
    p_submit.add_argument("--merge", default=None,
                          choices=MERGE_MODES)
    p_submit.add_argument("--data-layout", default=None,
                          choices=("module-order", "interleaved"))
    p_submit.add_argument("--verify-image", dest="verify_image",
                          action="store_true", default=None)
    p_submit.add_argument("--no-verify-image", dest="verify_image",
                          action="store_false")
    p_submit.add_argument("--deadline", type=float, default=0.0,
                          help="per-job deadline seconds (0 = daemon "
                               "default)")
    p_submit.add_argument("--no-wait", action="store_true",
                          help="return after admission; query later")
    _add_client_args(p_submit)
    p_submit.set_defaults(func=cmd_submit)

    p_status = sub.add_parser("status", help="query a running daemon")
    _add_client_args(p_status)
    p_status.set_defaults(func=cmd_status)

    args = parser.parse_args(argv)
    if args.command != "serve":
        # One-shot commands: route SIGTERM through the normal exception
        # path so finally blocks run — worker pools are terminated and
        # no half-published cache temp files or orphaned forks remain
        # (`serve` installs its own graceful-drain handlers instead).
        _install_interrupt_handler()
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("error: interrupted (worker pools torn down)", file=sys.stderr)
        return 130
    except DiagnosticError as exc:
        # Source-level diagnostics already carry file:line:col.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    except (OSError, ValueError) as exc:
        # Unreadable inputs, bad --inject-faults specs, and the like.
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _install_interrupt_handler() -> None:
    """Make SIGTERM behave like Ctrl-C for cleanup purposes."""

    def _on_sigterm(signum, frame):  # noqa: ARG001
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except (ValueError, OSError):
        pass  # not the main thread, or an exotic platform


if __name__ == "__main__":
    sys.exit(main())
