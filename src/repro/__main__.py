"""Command-line interface: build, run, inspect, and reproduce.

    python -m repro build app.sw [--rounds 5] [--pipeline wholeprogram]
    python -m repro run app.sw [--timing]
    python -m repro patterns app.sw [--top 10]
    python -m repro disasm app.sw [--function NAME]
    python -m repro experiments [name ...] [--scale small]

Multiple source files become one module each (module name = file stem).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from contextlib import contextmanager
from typing import Dict, List

from repro.errors import DiagnosticError, ReproError


def _load_sources(paths: List[str]) -> Dict[str, str]:
    sources: Dict[str, str] = {}
    for path in paths:
        name = os.path.splitext(os.path.basename(path))[0]
        with open(path, "r", encoding="utf-8") as fh:
            sources[name] = fh.read()
    return sources


def _fault_plan(args):
    from repro.pipeline import FaultPlan

    if not getattr(args, "inject_faults", None):
        return None
    return FaultPlan.parse(args.inject_faults)


@contextmanager
def _obs_session(args):
    """Activate a tracer for the command when any observability flag is
    set; on the way out write ``--trace-out`` / ``--metrics-out`` files
    and print the ``--profile`` table.

    Exports run in a ``finally`` so a degraded or failed build still
    leaves its partial trace behind (often the most interesting one).
    """
    from repro import obs

    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    profile = getattr(args, "profile", False)
    if not (trace_out or metrics_out or profile):
        yield None
        return
    tracer = obs.Tracer()
    try:
        with obs.use_tracer(tracer):
            yield tracer
    finally:
        if trace_out:
            obs.write_chrome_trace(tracer, trace_out)
            print(f"trace:     {trace_out} (load in chrome://tracing or "
                  f"https://ui.perfetto.dev)", file=sys.stderr)
        if metrics_out:
            obs.write_metrics(tracer, metrics_out)
            print(f"metrics:   {metrics_out}", file=sys.stderr)
        if profile:
            for line in obs.profile_lines(tracer):
                print(line)


def _build(args):
    from repro.pipeline import BuildConfig, build_program

    config = BuildConfig(pipeline=args.pipeline,
                         outline_rounds=args.rounds,
                         data_layout=args.data_layout,
                         target=args.target,
                         merge_mode=args.merge,
                         workers=args.workers,
                         incremental=args.incremental,
                         cache_dir=args.cache_dir,
                         verify_image=args.verify_image,
                         fail_fast=args.fail_fast,
                         fault_plan=_fault_plan(args))
    return build_program(_load_sources(args.sources), config), config


def cmd_build(args) -> int:
    with _obs_session(args):
        result, config = _build(args)
    sizes = result.sizes
    print(f"pipeline:  {config.pipeline}, outline rounds: "
          f"{config.outline_rounds}, target: {config.target}")
    print(f"code:      {sizes.text_bytes} bytes ({sizes.num_instrs} instructions)")
    print(f"data:      {sizes.data_bytes} bytes")
    print(f"binary:    {sizes.binary_bytes} bytes ({sizes.num_functions} functions)")
    for stat in result.outline_stats:
        print(f"  round {stat.round_no}: {stat.sequences_outlined} sequences "
              f"-> {stat.functions_created} outlined functions, "
              f"{stat.bytes_saved} bytes saved (cumulative)")
    for line in result.report.summary_lines():
        print(line)
    return 0


def cmd_run(args) -> int:
    from repro.pipeline import run_build
    from repro.sim.timing import DeviceConfig, TimingModel

    with _obs_session(args):
        result, _ = _build(args)
        timing = TimingModel(DeviceConfig()) if args.timing else None
        start = time.time()
        execution = run_build(result, timing=timing,
                              max_steps=args.max_steps)
    for line in execution.output:
        print(line)
    if args.stats:
        print(f"-- {execution.steps} instructions retired in "
              f"{time.time() - start:.2f}s host time", file=sys.stderr)
        if execution.cycles is not None:
            print(f"-- {execution.cycles} simulated cycles", file=sys.stderr)
        if execution.leaked:
            print(f"-- LEAKED {len(execution.leaked)} objects",
                  file=sys.stderr)
            return 1
    return 0


def cmd_patterns(args) -> int:
    from repro.analysis.patterns import mine_build_patterns
    from repro.outliner.stats import pattern_census

    with _obs_session(args):
        result, _ = _build(args)
    stats = mine_build_patterns(result)
    census = pattern_census(stats)
    print(f"{census['num_patterns']} profitable patterns, "
          f"{census['num_candidates']} candidates, "
          f"longest {census['max_length']} instructions")
    for stat in stats[:args.top]:
        print(f"\n#{stat.pattern_id}  x{stat.num_candidates}  "
              f"len {stat.length}  [{stat.outline_class.value}]  "
              f"saves {stat.benefit_bytes}B")
        for line in stat.rendered:
            print(f"    {line}")
        if stat.functions:
            print(f"    in: {', '.join(stat.functions)}")
    return 0


def cmd_disasm(args) -> int:
    with _obs_session(args):
        result, _ = _build(args)
    for module in result.machine_modules:
        for fn in module.functions:
            if args.function and args.function not in fn.name:
                continue
            print(fn.render())
            print()
    return 0


def cmd_experiments(args) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    wanted = args.names or list(ALL_EXPERIMENTS)
    for name in wanted:
        module = ALL_EXPERIMENTS.get(name)
        if module is None:
            print(f"unknown experiment {name!r}; available: "
                  f"{', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
            return 1
        print("=" * 72)
        print(f"experiment: {name}")
        print("=" * 72)
        kwargs = {}
        if "scale" in module.run.__code__.co_varnames:
            kwargs["scale"] = args.scale
        print(module.format_report(module.run(**kwargs)))
        print()
    return 0


def _add_build_args(parser) -> None:
    parser.add_argument("sources", nargs="+", help="Swiftlet source files")
    parser.add_argument("--rounds", type=int, default=5,
                        help="machine outlining rounds (default 5)")
    parser.add_argument("--pipeline", default="wholeprogram",
                        choices=("wholeprogram", "default"))
    from repro.target import available_targets, default_target_name
    parser.add_argument("--target", default=default_target_name(),
                        choices=available_targets(),
                        help="target specification (instruction widths, "
                             "alignment, calling convention); default "
                             "$REPRO_TARGET or arm64")
    from repro.pipeline.config import MERGE_MODES, default_merge_mode
    parser.add_argument("--merge", default=default_merge_mode(),
                        choices=MERGE_MODES,
                        help="whole-program function merging: off, exact "
                             "(bit-identical dedup), or optimistic "
                             "(similarity merging with priced thunks); "
                             "default $REPRO_MERGE or off")
    parser.add_argument("--data-layout", default="module-order",
                        choices=("module-order", "interleaved"))
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for per-module compilation "
                             "(1 = serial, 0 = one per core)")
    parser.add_argument("--incremental", action="store_true",
                        help="reuse the content-addressed build cache")
    parser.add_argument("--cache-dir", default=None,
                        help="cache location (default: $REPRO_CACHE_DIR "
                             "or a tempdir)")
    parser.add_argument("--verify-image", dest="verify_image",
                        action="store_true", default=True,
                        help="run the post-link binary verifier (default)")
    parser.add_argument("--no-verify-image", dest="verify_image",
                        action="store_false",
                        help="skip the post-link binary verifier")
    parser.add_argument("--fail-fast", action="store_true",
                        help="raise on the first worker failure instead of "
                             "retrying/degrading (for CI)")
    parser.add_argument("--inject-faults", default=None, metavar="SPEC",
                        help="seeded fault injection, e.g. "
                             "'seed=7,crash=0.3,corrupt=1' (keys: seed, "
                             "crash, hang, pickle, corrupt, torn, nofork)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a Chrome trace_event JSON of the build "
                             "(load in chrome://tracing or Perfetto)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the build's metrics (counters/gauges/"
                             "histograms) as JSON")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-span/per-metric summary table "
                             "after the command")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="compile and report sizes")
    _add_build_args(p_build)
    p_build.set_defaults(func=cmd_build)

    p_run = sub.add_parser("run", help="compile and execute")
    _add_build_args(p_run)
    p_run.add_argument("--timing", action="store_true",
                       help="enable the cycle timing model")
    p_run.add_argument("--stats", action="store_true",
                       help="print execution statistics to stderr")
    p_run.add_argument("--max-steps", type=int, default=100_000_000)
    p_run.set_defaults(func=cmd_run)

    p_pat = sub.add_parser("patterns",
                           help="mine repeated machine patterns (§IV)")
    _add_build_args(p_pat)
    p_pat.add_argument("--top", type=int, default=8)
    p_pat.set_defaults(func=cmd_patterns)

    p_dis = sub.add_parser("disasm", help="print generated machine code")
    _add_build_args(p_dis)
    p_dis.add_argument("--function", help="filter by function-name substring")
    p_dis.set_defaults(func=cmd_disasm)

    p_exp = sub.add_parser("experiments",
                           help="regenerate the paper's tables/figures")
    p_exp.add_argument("names", nargs="*",
                       help="experiment names (default: all)")
    p_exp.add_argument("--scale", default="tiny",
                       choices=("tiny", "small", "medium", "large"))
    p_exp.set_defaults(func=cmd_experiments)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except DiagnosticError as exc:
        # Source-level diagnostics already carry file:line:col.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    except (OSError, ValueError) as exc:
        # Unreadable inputs, bad --inject-faults specs, and the like.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
