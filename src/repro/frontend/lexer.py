"""Hand-written lexer for Swiftlet.

Newlines are significant statement separators (as in Swift); the lexer emits
``NEWLINE`` tokens, which the parser collapses.  Comments (``//`` and
``/* ... */``) are skipped.
"""

from __future__ import annotations

from typing import List

from repro.errors import LexerError
from repro.frontend.tokens import KEYWORDS, Token, TokenKind

_TWO_CHAR = {
    "->": TokenKind.ARROW,
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
    "+=": TokenKind.PLUS_ASSIGN,
    "-=": TokenKind.MINUS_ASSIGN,
    "*=": TokenKind.STAR_ASSIGN,
    "/=": TokenKind.SLASH_ASSIGN,
    "<<": TokenKind.SHL,
    ">>": TokenKind.SHR,
}

_ONE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ":": TokenKind.COLON,
    ".": TokenKind.DOT,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.NOT,
    "&": TokenKind.AMP,
    "^": TokenKind.CARET,
    "|": TokenKind.PIPE,
    ";": TokenKind.SEMI,
}

_ESCAPES = {"n": "\n", "t": "\t", "\\": "\\", '"': '"', "0": "\0", "r": "\r"}


class Lexer:
    """Tokenises one Swiftlet source file."""

    def __init__(self, source: str, filename: str = "<input>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- helpers ---------------------------------------------------------

    def _peek(self, ahead: int = 0) -> str:
        idx = self.pos + ahead
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def _error(self, message: str) -> LexerError:
        return LexerError(message, self.line, self.column, self.filename)

    def _make(self, kind: TokenKind, text: str, value=None, line=None, column=None) -> Token:
        return Token(kind, text, value, line or self.line, column or self.column)

    # -- main loop --------------------------------------------------------

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while self.pos < len(self.source):
            ch = self._peek()
            if ch == "\n":
                line, col = self.line, self.column
                self._advance()
                if tokens and tokens[-1].kind is not TokenKind.NEWLINE:
                    tokens.append(Token(TokenKind.NEWLINE, "\\n", None, line, col))
                continue
            if ch in " \t\r":
                self._advance()
                continue
            if ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
                continue
            if ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
                continue
            if ch.isdigit():
                tokens.append(self._lex_number())
                continue
            if ch.isalpha() or ch == "_":
                tokens.append(self._lex_ident())
                continue
            if ch == '"':
                tokens.append(self._lex_string())
                continue
            tokens.append(self._lex_operator())
        tokens.append(Token(TokenKind.EOF, "", None, self.line, self.column))
        return tokens

    def _skip_block_comment(self) -> None:
        start_line, start_col = self.line, self.column
        self._advance()
        self._advance()
        depth = 1
        while depth > 0:
            if self.pos >= len(self.source):
                raise LexerError(
                    "unterminated block comment", start_line, start_col, self.filename
                )
            if self._peek() == "/" and self._peek(1) == "*":
                self._advance()
                self._advance()
                depth += 1
            elif self._peek() == "*" and self._peek(1) == "/":
                self._advance()
                self._advance()
                depth -= 1
            else:
                self._advance()

    def _lex_number(self) -> Token:
        line, col = self.line, self.column
        start = self.pos
        if self._peek() == "0" and self._peek(1) and self._peek(1) in "xX":
            self._advance()
            self._advance()
            while self._peek() and (self._peek() in "0123456789abcdefABCDEF_"):
                self._advance()
            text = self.source[start:self.pos]
            return Token(TokenKind.INT, text, int(text.replace("_", ""), 16), line, col)
        while self._peek().isdigit() or self._peek() == "_":
            self._advance()
        is_float = False
        # A '.' starts a fraction only when followed by a digit ("1..<n" must
        # not consume the range operator).
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit() or self._peek() == "_":
                self._advance()
        nxt = self._peek(1)
        if self._peek() and self._peek() in "eE" and (
                nxt.isdigit() or (nxt and nxt in "+-")):
            is_float = True
            self._advance()
            if self._peek() and self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start:self.pos]
        clean = text.replace("_", "")
        if is_float:
            return Token(TokenKind.FLOAT, text, float(clean), line, col)
        return Token(TokenKind.INT, text, int(clean), line, col)

    def _lex_ident(self) -> Token:
        line, col = self.line, self.column
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start:self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, text if kind is TokenKind.IDENT else None, line, col)

    def _lex_string(self) -> Token:
        line, col = self.line, self.column
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self.pos >= len(self.source) or self._peek() == "\n":
                raise LexerError("unterminated string literal", line, col, self.filename)
            ch = self._advance()
            if ch == '"':
                break
            if ch == "\\":
                esc = self._advance()
                if esc not in _ESCAPES:
                    raise self._error(f"unknown escape sequence '\\{esc}'")
                chars.append(_ESCAPES[esc])
            else:
                chars.append(ch)
        value = "".join(chars)
        return Token(TokenKind.STRING, f'"{value}"', value, line, col)

    def _lex_operator(self) -> Token:
        line, col = self.line, self.column
        ch = self._peek()
        if ch == "." and self._peek(1) == "." and self._peek(2) == "<":
            for _ in range(3):
                self._advance()
            return Token(TokenKind.RANGE_HALF, "..<", None, line, col)
        if ch == "." and self._peek(1) == "." and self._peek(2) == ".":
            for _ in range(3):
                self._advance()
            return Token(TokenKind.RANGE_FULL, "...", None, line, col)
        two = self.source[self.pos:self.pos + 2]
        if two in _TWO_CHAR:
            self._advance()
            self._advance()
            return Token(_TWO_CHAR[two], two, None, line, col)
        if ch in _ONE_CHAR:
            self._advance()
            return Token(_ONE_CHAR[ch], ch, None, line, col)
        raise self._error(f"unexpected character {ch!r}")


def tokenize(source: str, filename: str = "<input>") -> List[Token]:
    """Convenience wrapper: tokenize *source* in one call."""
    return Lexer(source, filename).tokenize()
