"""Swiftlet frontend: lexer, parser, AST, and semantic analysis."""

from repro.frontend.parser import parse_module
from repro.frontend.sema import ProgramInfo, analyze_program

__all__ = ["parse_module", "analyze_program", "ProgramInfo"]
