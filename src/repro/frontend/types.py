"""Swiftlet type system.

Types are immutable and compared structurally (nominal for classes).  The
reference/value split drives ARC insertion in SILGen:

* value types: ``Int``, ``Double``, ``Bool`` (machine words);
* reference types: classes, arrays, strings, and function values (closures),
  all heap-allocated with a refcount header.

Deviation from Swift (documented in DESIGN.md): arrays and strings are
reference types here (NSArray-like), and class references are nullable
(``nil``) without an ``Optional`` wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


class Type:
    """Base class for all Swiftlet types."""

    def is_ref(self) -> bool:
        return False

    def is_numeric(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return str(self)


class _Singleton(Type):
    _NAME = "?"

    def __str__(self) -> str:
        return self._NAME

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class IntType(_Singleton):
    _NAME = "Int"

    def is_numeric(self) -> bool:
        return True


class DoubleType(_Singleton):
    _NAME = "Double"

    def is_numeric(self) -> bool:
        return True


class BoolType(_Singleton):
    _NAME = "Bool"


class VoidType(_Singleton):
    _NAME = "Void"


class StringType(_Singleton):
    _NAME = "String"

    def is_ref(self) -> bool:
        return True


class NilType(_Singleton):
    """Type of the ``nil`` literal; coerces to any reference type."""

    _NAME = "Nil"


INT = IntType()
DOUBLE = DoubleType()
BOOL = BoolType()
VOID = VoidType()
STRING = StringType()
NIL = NilType()


@dataclass(frozen=True)
class ArrayType(Type):
    elem: Type

    def is_ref(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"[{self.elem}]"


@dataclass(frozen=True)
class ClassType(Type):
    """Nominal class type; ``qualified_name`` is ``module::Class``."""

    qualified_name: str

    def is_ref(self) -> bool:
        return True

    @property
    def name(self) -> str:
        return self.qualified_name.split("::")[-1]

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FuncType(Type):
    params: Tuple[Type, ...]
    ret: Type
    throws: bool = False

    def is_ref(self) -> bool:
        # Function values are closure objects on the heap.
        return True

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        arrow = " throws ->" if self.throws else " ->"
        return f"({params}){arrow} {self.ret}"


def assignable(target: Type, source: Type) -> bool:
    """True if a value of *source* type can be assigned to *target*."""
    if target == source:
        return True
    if isinstance(source, NilType) and target.is_ref():
        return True
    if isinstance(target, FuncType) and isinstance(source, FuncType):
        # Non-throwing closures convert to throwing function types.
        return (
            target.params == source.params
            and target.ret == source.ret
            and (target.throws or not source.throws)
        )
    return False


def element_size_bytes(_ty: Type) -> int:
    """Array payload stride; every Swiftlet value is one 8-byte word."""
    return 8
