"""AST node definitions for Swiftlet.

Nodes are plain dataclasses.  Sema decorates expressions with a ``ty``
attribute (their :class:`repro.frontend.types.Type`) and identifiers with a
``binding`` (:class:`VarBinding` or a declaration node); SILGen reads those
annotations and never re-does name resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.frontend.types import Type


@dataclass
class Node:
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


# --- Expressions --------------------------------------------------------------


@dataclass
class Expr(Node):
    #: Filled in by sema.
    ty: Optional[Type] = field(default=None, compare=False)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class NilLit(Expr):
    pass


@dataclass
class Ident(Expr):
    name: str = ""
    #: Filled in by sema: VarBinding for variables, FuncDecl for functions,
    #: ClassDecl for type references, GlobalDecl for globals.
    binding: object = field(default=None, compare=False)


@dataclass
class SelfExpr(Expr):
    binding: object = field(default=None, compare=False)


@dataclass
class BinaryExpr(Expr):
    op: str = ""  # + - * / % & | ^ << >> == != < <= > >= && ||
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class UnaryExpr(Expr):
    op: str = ""  # - !
    operand: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    """A call: free function, method (callee is MemberExpr), constructor
    (callee is an Ident bound to a ClassDecl), builtin, or closure value."""

    callee: Optional[Expr] = None
    args: List[Expr] = field(default_factory=list)
    labels: List[Optional[str]] = field(default_factory=list)
    #: Filled in by sema: one of "func", "method", "ctor", "builtin", "value".
    call_kind: str = field(default="", compare=False)
    #: Resolved target declaration (FuncDecl / InitDecl / builtin name).
    target: object = field(default=None, compare=False)


@dataclass
class MemberExpr(Expr):
    base: Optional[Expr] = None
    name: str = ""
    #: Filled in by sema: ("field", index), ("count",), ("method", FuncDecl).
    member_kind: object = field(default=None, compare=False)


@dataclass
class IndexExpr(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class ArrayLit(Expr):
    elements: List[Expr] = field(default_factory=list)


@dataclass
class ArrayRepeating(Expr):
    """``[T](repeating: expr, count: expr)``."""

    elem_type: Optional[Type] = None
    repeating: Optional[Expr] = None
    count: Optional[Expr] = None


@dataclass
class ClosureExpr(Expr):
    """``{ (a: Int, b: Int) -> Int in ... }``"""

    params: List["Param"] = field(default_factory=list)
    ret_type: Optional[Type] = None
    body: Optional["Block"] = None
    #: Filled in by sema: VarBindings captured from enclosing scopes.
    captures: List["VarBinding"] = field(default_factory=list, compare=False)
    #: Symbol name assigned by sema (module::enclosing.closure#N).
    symbol: str = field(default="", compare=False)


@dataclass
class TryExpr(Expr):
    inner: Optional[Expr] = None


# --- Statements ----------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Node):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class VarDeclStmt(Stmt):
    is_let: bool = True
    name: str = ""
    declared_type: Optional[Type] = None
    init: Optional[Expr] = None
    binding: object = field(default=None, compare=False)


@dataclass
class AssignStmt(Stmt):
    target: Optional[Expr] = None
    #: None for plain ``=``; "+", "-", "*", "/" for compound assignment.
    op: Optional[str] = None
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class IfStmt(Stmt):
    cond: Optional[Expr] = None
    then_block: Optional[Block] = None
    else_block: Optional[Block] = None  # Block or nested IfStmt wrapped in Block


@dataclass
class WhileStmt(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Block] = None


@dataclass
class ForRangeStmt(Stmt):
    var_name: str = ""
    start: Optional[Expr] = None
    end: Optional[Expr] = None
    inclusive: bool = False
    body: Optional[Block] = None
    binding: object = field(default=None, compare=False)


@dataclass
class ForEachStmt(Stmt):
    var_name: str = ""
    iterable: Optional[Expr] = None
    body: Optional[Block] = None
    binding: object = field(default=None, compare=False)


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class ThrowStmt(Stmt):
    #: The error code expression (Swiftlet errors are Int codes).
    code: Optional[Expr] = None


@dataclass
class DoCatchStmt(Stmt):
    body: Optional[Block] = None
    catch_body: Optional[Block] = None
    #: Name bound to the error code inside the catch block ("error").
    error_name: str = "error"
    error_binding: object = field(default=None, compare=False)


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


# --- Declarations ----------------------------------------------------------------


@dataclass
class Param(Node):
    name: str = ""
    ty: Optional[Type] = None
    binding: object = field(default=None, compare=False)


@dataclass
class FuncDecl(Node):
    name: str = ""
    params: List[Param] = field(default_factory=list)
    ret_type: Optional[Type] = None
    throws: bool = False
    body: Optional[Block] = None
    is_public: bool = True
    #: Enclosing class for methods (set during sema header collection).
    owner_class: object = field(default=None, compare=False)
    #: Mangled symbol, e.g. ``module::name`` or ``module::Class.method``.
    symbol: str = field(default="", compare=False)


@dataclass
class FieldDecl(Node):
    name: str = ""
    ty: Optional[Type] = None
    is_let: bool = False
    index: int = field(default=-1, compare=False)


@dataclass
class InitDecl(Node):
    params: List[Param] = field(default_factory=list)
    throws: bool = False
    body: Optional[Block] = None
    owner_class: object = field(default=None, compare=False)
    symbol: str = field(default="", compare=False)


@dataclass
class ClassDecl(Node):
    name: str = ""
    fields: List[FieldDecl] = field(default_factory=list)
    methods: List[FuncDecl] = field(default_factory=list)
    inits: List[InitDecl] = field(default_factory=list)
    is_final: bool = True
    qualified_name: str = field(default="", compare=False)
    #: Runtime type id assigned by sema (unique per program).
    type_id: int = field(default=-1, compare=False)


@dataclass
class GlobalDecl(Node):
    is_let: bool = True
    name: str = ""
    declared_type: Optional[Type] = None
    init: Optional[Expr] = None
    symbol: str = field(default="", compare=False)
    binding: object = field(default=None, compare=False)


@dataclass
class Module(Node):
    name: str = ""
    imports: List[str] = field(default_factory=list)
    functions: List[FuncDecl] = field(default_factory=list)
    classes: List[ClassDecl] = field(default_factory=list)
    globals: List[GlobalDecl] = field(default_factory=list)


# --- Bindings (produced by sema) ----------------------------------------------


@dataclass
class VarBinding:
    """Resolved variable: a local, parameter, global, self, or loop variable."""

    name: str
    ty: Type
    is_let: bool
    kind: str  # "local" | "param" | "global" | "self" | "catch"
    uid: int
    #: True if a closure captures this binding: it must live in a heap box.
    boxed: bool = False
    #: For globals, the linker symbol.
    symbol: str = ""
