"""Recursive-descent parser for Swiftlet.

Produces the AST of one module.  Newlines separate statements (as in Swift);
semicolons are also accepted.  The parser performs no name resolution; that
is sema's job.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import Token, TokenKind
from repro.frontend.types import (
    BOOL,
    DOUBLE,
    INT,
    STRING,
    VOID,
    ArrayType,
    ClassType,
    FuncType,
    Type,
)

_BUILTIN_TYPE_NAMES = {
    "Int": INT,
    "Double": DOUBLE,
    "Bool": BOOL,
    "String": STRING,
    "Void": VOID,
}

# Binary operator precedence, loosest first.
_PRECEDENCE = [
    {TokenKind.OR: "||"},
    {TokenKind.AND: "&&"},
    {
        TokenKind.EQ: "==",
        TokenKind.NE: "!=",
        TokenKind.LT: "<",
        TokenKind.LE: "<=",
        TokenKind.GT: ">",
        TokenKind.GE: ">=",
    },
    {TokenKind.PIPE: "|"},
    {TokenKind.CARET: "^"},
    {TokenKind.AMP: "&"},
    {TokenKind.SHL: "<<", TokenKind.SHR: ">>"},
    {TokenKind.PLUS: "+", TokenKind.MINUS: "-"},
    {TokenKind.STAR: "*", TokenKind.SLASH: "/", TokenKind.PERCENT: "%"},
]

_COMPOUND_ASSIGN = {
    TokenKind.PLUS_ASSIGN: "+",
    TokenKind.MINUS_ASSIGN: "-",
    TokenKind.STAR_ASSIGN: "*",
    TokenKind.SLASH_ASSIGN: "/",
}


class Parser:
    """Parses a token stream into a :class:`repro.frontend.ast.Module`."""

    def __init__(self, tokens: List[Token], module_name: str, filename: str = "<input>"):
        self.tokens = tokens
        self.pos = 0
        self.module_name = module_name
        self.filename = filename

    # -- token plumbing -----------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        idx = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[idx]

    def _peek_skipping_newlines(self, ahead: int = 0) -> Token:
        idx = self.pos
        seen = 0
        while idx < len(self.tokens):
            tok = self.tokens[idx]
            if tok.kind is not TokenKind.NEWLINE:
                if seen == ahead:
                    return tok
                seen += 1
            idx += 1
        return self.tokens[-1]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def _check(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _match(self, kind: TokenKind) -> Optional[Token]:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, what: str) -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            raise self._error(f"expected {what}, found {tok.text!r}")
        return self._advance()

    def _error(self, message: str) -> ParseError:
        tok = self._peek()
        return ParseError(message, tok.line, tok.column, self.filename)

    def _skip_newlines(self) -> None:
        while self._peek().kind in (TokenKind.NEWLINE, TokenKind.SEMI):
            self._advance()

    def _end_statement(self) -> None:
        """Consume a statement terminator: newline, ';', or lookahead '}'."""
        if self._peek().kind in (TokenKind.NEWLINE, TokenKind.SEMI):
            self._advance()
            return
        if self._peek().kind in (TokenKind.RBRACE, TokenKind.EOF):
            return
        raise self._error(f"expected end of statement, found {self._peek().text!r}")

    # -- module & declarations -----------------------------------------------

    def parse_module(self) -> ast.Module:
        module = ast.Module(name=self.module_name)
        self._skip_newlines()
        while self._check(TokenKind.KW_IMPORT):
            self._advance()
            name = self._expect(TokenKind.IDENT, "module name").text
            module.imports.append(name)
            self._end_statement()
            self._skip_newlines()
        while not self._check(TokenKind.EOF):
            # access / final modifiers are accepted and ignored
            while self._peek().kind in (TokenKind.KW_PUBLIC, TokenKind.KW_FINAL):
                self._advance()
            tok = self._peek()
            if tok.kind is TokenKind.KW_FUNC:
                module.functions.append(self._parse_func())
            elif tok.kind is TokenKind.KW_CLASS:
                module.classes.append(self._parse_class())
            elif tok.kind in (TokenKind.KW_LET, TokenKind.KW_VAR):
                module.globals.append(self._parse_global())
            else:
                raise self._error(
                    f"expected declaration at module scope, found {tok.text!r}"
                )
            self._skip_newlines()
        return module

    def _parse_func(self) -> ast.FuncDecl:
        start = self._expect(TokenKind.KW_FUNC, "'func'")
        name = self._expect(TokenKind.IDENT, "function name").text
        params = self._parse_param_clause()
        throws = bool(self._match(TokenKind.KW_THROWS))
        ret_type: Type = VOID
        if self._match(TokenKind.ARROW):
            ret_type = self._parse_type()
        body = self._parse_block()
        return ast.FuncDecl(
            line=start.line,
            column=start.column,
            name=name,
            params=params,
            ret_type=ret_type,
            throws=throws,
            body=body,
        )

    def _parse_param_clause(self) -> List[ast.Param]:
        self._expect(TokenKind.LPAREN, "'('")
        params: List[ast.Param] = []
        self._skip_newlines()
        while not self._check(TokenKind.RPAREN):
            # Accept "label name: T" (Swift external labels) and "_ name: T";
            # only the internal name is kept.
            first = self._expect(TokenKind.IDENT, "parameter name")
            name = first.text
            if self._check(TokenKind.IDENT):
                name = self._advance().text
            self._expect(TokenKind.COLON, "':'")
            ty = self._parse_type()
            params.append(ast.Param(line=first.line, column=first.column, name=name, ty=ty))
            self._skip_newlines()
            if not self._match(TokenKind.COMMA):
                break
            self._skip_newlines()
        self._expect(TokenKind.RPAREN, "')'")
        return params

    def _parse_class(self) -> ast.ClassDecl:
        start = self._expect(TokenKind.KW_CLASS, "'class'")
        name = self._expect(TokenKind.IDENT, "class name").text
        decl = ast.ClassDecl(line=start.line, column=start.column, name=name)
        self._expect(TokenKind.LBRACE, "'{'")
        self._skip_newlines()
        while not self._check(TokenKind.RBRACE):
            while self._peek().kind in (TokenKind.KW_PUBLIC, TokenKind.KW_FINAL):
                self._advance()
            tok = self._peek()
            if tok.kind in (TokenKind.KW_VAR, TokenKind.KW_LET):
                is_let = tok.kind is TokenKind.KW_LET
                self._advance()
                fname = self._expect(TokenKind.IDENT, "field name").text
                self._expect(TokenKind.COLON, "':' (fields require a type)")
                fty = self._parse_type()
                decl.fields.append(
                    ast.FieldDecl(line=tok.line, column=tok.column, name=fname,
                                  ty=fty, is_let=is_let)
                )
                self._end_statement()
            elif tok.kind is TokenKind.KW_INIT:
                self._advance()
                params = self._parse_param_clause()
                throws = bool(self._match(TokenKind.KW_THROWS))
                body = self._parse_block()
                decl.inits.append(
                    ast.InitDecl(line=tok.line, column=tok.column, params=params,
                                 throws=throws, body=body)
                )
            elif tok.kind is TokenKind.KW_FUNC:
                decl.methods.append(self._parse_func())
            else:
                raise self._error(f"expected class member, found {tok.text!r}")
            self._skip_newlines()
        self._expect(TokenKind.RBRACE, "'}'")
        return decl

    def _parse_global(self) -> ast.GlobalDecl:
        tok = self._advance()  # let / var
        is_let = tok.kind is TokenKind.KW_LET
        name = self._expect(TokenKind.IDENT, "global name").text
        declared_type: Optional[Type] = None
        if self._match(TokenKind.COLON):
            declared_type = self._parse_type()
        self._expect(TokenKind.ASSIGN, "'=' (globals require an initializer)")
        init = self._parse_expr()
        self._end_statement()
        return ast.GlobalDecl(
            line=tok.line, column=tok.column, is_let=is_let, name=name,
            declared_type=declared_type, init=init,
        )

    # -- types ------------------------------------------------------------

    def _parse_type(self) -> Type:
        tok = self._peek()
        if tok.kind is TokenKind.LBRACKET:
            self._advance()
            elem = self._parse_type()
            self._expect(TokenKind.RBRACKET, "']'")
            return ArrayType(elem)
        if tok.kind is TokenKind.LPAREN:
            self._advance()
            params: List[Type] = []
            while not self._check(TokenKind.RPAREN):
                params.append(self._parse_type())
                if not self._match(TokenKind.COMMA):
                    break
            self._expect(TokenKind.RPAREN, "')'")
            throws = bool(self._match(TokenKind.KW_THROWS))
            self._expect(TokenKind.ARROW, "'->' in function type")
            ret = self._parse_type()
            return FuncType(tuple(params), ret, throws)
        if tok.kind is TokenKind.IDENT:
            self._advance()
            if tok.text in _BUILTIN_TYPE_NAMES:
                return _BUILTIN_TYPE_NAMES[tok.text]
            # Nominal class reference; sema qualifies it with the module.
            return ClassType(tok.text)
        raise self._error(f"expected a type, found {tok.text!r}")

    def _try_parse_type(self) -> Optional[Type]:
        """Attempt a type parse with backtracking; None on failure."""
        saved = self.pos
        try:
            return self._parse_type()
        except ParseError:
            self.pos = saved
            return None

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        start = self._expect(TokenKind.LBRACE, "'{'")
        block = ast.Block(line=start.line, column=start.column)
        self._skip_newlines()
        while not self._check(TokenKind.RBRACE):
            block.stmts.append(self._parse_stmt())
            self._skip_newlines()
        self._expect(TokenKind.RBRACE, "'}'")
        return block

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok.kind in (TokenKind.KW_LET, TokenKind.KW_VAR):
            return self._parse_var_decl()
        if tok.kind is TokenKind.KW_IF:
            return self._parse_if()
        if tok.kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if tok.kind is TokenKind.KW_FOR:
            return self._parse_for()
        if tok.kind is TokenKind.KW_RETURN:
            self._advance()
            value: Optional[ast.Expr] = None
            if self._peek().kind not in (
                TokenKind.NEWLINE, TokenKind.SEMI, TokenKind.RBRACE, TokenKind.EOF
            ):
                value = self._parse_expr()
            self._end_statement()
            return ast.ReturnStmt(line=tok.line, column=tok.column, value=value)
        if tok.kind is TokenKind.KW_THROW:
            self._advance()
            code = self._parse_expr()
            self._end_statement()
            return ast.ThrowStmt(line=tok.line, column=tok.column, code=code)
        if tok.kind is TokenKind.KW_BREAK:
            self._advance()
            self._end_statement()
            return ast.BreakStmt(line=tok.line, column=tok.column)
        if tok.kind is TokenKind.KW_CONTINUE:
            self._advance()
            self._end_statement()
            return ast.ContinueStmt(line=tok.line, column=tok.column)
        if tok.kind is TokenKind.KW_DO:
            return self._parse_do_catch()
        # Expression or assignment.
        expr = self._parse_expr()
        if self._check(TokenKind.ASSIGN):
            self._advance()
            value = self._parse_expr()
            self._end_statement()
            return ast.AssignStmt(line=tok.line, column=tok.column, target=expr,
                                  op=None, value=value)
        if self._peek().kind in _COMPOUND_ASSIGN:
            op = _COMPOUND_ASSIGN[self._advance().kind]
            value = self._parse_expr()
            self._end_statement()
            return ast.AssignStmt(line=tok.line, column=tok.column, target=expr,
                                  op=op, value=value)
        self._end_statement()
        return ast.ExprStmt(line=tok.line, column=tok.column, expr=expr)

    def _parse_var_decl(self) -> ast.VarDeclStmt:
        tok = self._advance()
        is_let = tok.kind is TokenKind.KW_LET
        name = self._expect(TokenKind.IDENT, "variable name").text
        declared_type: Optional[Type] = None
        if self._match(TokenKind.COLON):
            declared_type = self._parse_type()
        init: Optional[ast.Expr] = None
        if self._match(TokenKind.ASSIGN):
            init = self._parse_expr()
        self._end_statement()
        return ast.VarDeclStmt(line=tok.line, column=tok.column, is_let=is_let,
                               name=name, declared_type=declared_type, init=init)

    def _parse_if(self) -> ast.IfStmt:
        tok = self._expect(TokenKind.KW_IF, "'if'")
        cond = self._parse_expr()
        then_block = self._parse_block()
        else_block: Optional[ast.Block] = None
        if self._peek_skipping_newlines().kind is TokenKind.KW_ELSE:
            self._skip_newlines()
            self._advance()
            if self._check(TokenKind.KW_IF):
                nested = self._parse_if()
                else_block = ast.Block(line=nested.line, column=nested.column,
                                       stmts=[nested])
            else:
                else_block = self._parse_block()
        return ast.IfStmt(line=tok.line, column=tok.column, cond=cond,
                          then_block=then_block, else_block=else_block)

    def _parse_while(self) -> ast.WhileStmt:
        tok = self._expect(TokenKind.KW_WHILE, "'while'")
        cond = self._parse_expr()
        body = self._parse_block()
        return ast.WhileStmt(line=tok.line, column=tok.column, cond=cond, body=body)

    def _parse_for(self) -> ast.Stmt:
        tok = self._expect(TokenKind.KW_FOR, "'for'")
        var_name = self._expect(TokenKind.IDENT, "loop variable").text
        self._expect(TokenKind.KW_IN, "'in'")
        first = self._parse_expr()
        if self._check(TokenKind.RANGE_HALF) or self._check(TokenKind.RANGE_FULL):
            inclusive = self._advance().kind is TokenKind.RANGE_FULL
            end = self._parse_expr()
            body = self._parse_block()
            return ast.ForRangeStmt(line=tok.line, column=tok.column,
                                    var_name=var_name, start=first, end=end,
                                    inclusive=inclusive, body=body)
        body = self._parse_block()
        return ast.ForEachStmt(line=tok.line, column=tok.column, var_name=var_name,
                               iterable=first, body=body)

    def _parse_do_catch(self) -> ast.DoCatchStmt:
        tok = self._expect(TokenKind.KW_DO, "'do'")
        body = self._parse_block()
        self._skip_newlines()
        self._expect(TokenKind.KW_CATCH, "'catch'")
        catch_body = self._parse_block()
        return ast.DoCatchStmt(line=tok.line, column=tok.column, body=body,
                               catch_body=catch_body)

    # -- expressions -----------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        if self._check(TokenKind.KW_TRY):
            tok = self._advance()
            inner = self._parse_binary(0)
            return ast.TryExpr(line=tok.line, column=tok.column, inner=inner)
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        table = _PRECEDENCE[level]
        while self._peek().kind in table:
            tok = self._advance()
            op = table[tok.kind]
            right = self._parse_binary(level + 1)
            left = ast.BinaryExpr(line=tok.line, column=tok.column, op=op,
                                  left=left, right=right)
        return left

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.MINUS:
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryExpr(line=tok.line, column=tok.column, op="-",
                                 operand=operand)
        if tok.kind is TokenKind.NOT:
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryExpr(line=tok.line, column=tok.column, op="!",
                                 operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.kind is TokenKind.LPAREN:
                self._advance()
                args, labels = self._parse_call_args()
                expr = ast.CallExpr(line=tok.line, column=tok.column, callee=expr,
                                    args=args, labels=labels)
            elif tok.kind is TokenKind.LBRACKET:
                self._advance()
                index = self._parse_expr()
                self._expect(TokenKind.RBRACKET, "']'")
                expr = ast.IndexExpr(line=tok.line, column=tok.column, base=expr,
                                     index=index)
            elif tok.kind is TokenKind.DOT:
                self._advance()
                name = self._expect(TokenKind.IDENT, "member name").text
                expr = ast.MemberExpr(line=tok.line, column=tok.column, base=expr,
                                      name=name)
            else:
                return expr

    def _parse_call_args(self):
        args: List[ast.Expr] = []
        labels: List[Optional[str]] = []
        self._skip_newlines()
        while not self._check(TokenKind.RPAREN):
            label: Optional[str] = None
            if (
                self._peek().kind is TokenKind.IDENT
                and self._peek(1).kind is TokenKind.COLON
            ):
                label = self._advance().text
                self._advance()
            args.append(self._parse_expr())
            labels.append(label)
            self._skip_newlines()
            if not self._match(TokenKind.COMMA):
                break
            self._skip_newlines()
        self._expect(TokenKind.RPAREN, "')'")
        return args, labels

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.INT:
            self._advance()
            return ast.IntLit(line=tok.line, column=tok.column, value=tok.value)
        if tok.kind is TokenKind.FLOAT:
            self._advance()
            return ast.FloatLit(line=tok.line, column=tok.column, value=tok.value)
        if tok.kind is TokenKind.STRING:
            self._advance()
            return ast.StringLit(line=tok.line, column=tok.column, value=tok.value)
        if tok.kind is TokenKind.KW_TRUE:
            self._advance()
            return ast.BoolLit(line=tok.line, column=tok.column, value=True)
        if tok.kind is TokenKind.KW_FALSE:
            self._advance()
            return ast.BoolLit(line=tok.line, column=tok.column, value=False)
        if tok.kind is TokenKind.KW_NIL:
            self._advance()
            return ast.NilLit(line=tok.line, column=tok.column)
        if tok.kind is TokenKind.KW_SELF:
            self._advance()
            return ast.SelfExpr(line=tok.line, column=tok.column)
        if tok.kind is TokenKind.IDENT:
            self._advance()
            return ast.Ident(line=tok.line, column=tok.column, name=tok.text)
        if tok.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN, "')'")
            return expr
        if tok.kind is TokenKind.LBRACKET:
            return self._parse_bracket_expr()
        if tok.kind is TokenKind.LBRACE:
            return self._parse_closure()
        raise self._error(f"expected an expression, found {tok.text!r}")

    def _parse_bracket_expr(self) -> ast.Expr:
        """Array literal ``[a, b]`` or repeating ctor ``[T](repeating:, count:)``."""
        tok = self._expect(TokenKind.LBRACKET, "'['")
        saved = self.pos
        elem_type = self._try_parse_type()
        if (
            elem_type is not None
            and self._check(TokenKind.RBRACKET)
            and self._peek(1).kind is TokenKind.LPAREN
        ):
            self._advance()  # ]
            self._advance()  # (
            args, labels = self._parse_call_args()
            if labels != ["repeating", "count"] or len(args) != 2:
                raise self._error(
                    "array constructor takes (repeating: value, count: n)"
                )
            return ast.ArrayRepeating(line=tok.line, column=tok.column,
                                      elem_type=elem_type, repeating=args[0],
                                      count=args[1])
        self.pos = saved
        elements: List[ast.Expr] = []
        self._skip_newlines()
        while not self._check(TokenKind.RBRACKET):
            elements.append(self._parse_expr())
            self._skip_newlines()
            if not self._match(TokenKind.COMMA):
                break
            self._skip_newlines()
        self._expect(TokenKind.RBRACKET, "']'")
        return ast.ArrayLit(line=tok.line, column=tok.column, elements=elements)

    def _parse_closure(self) -> ast.ClosureExpr:
        tok = self._expect(TokenKind.LBRACE, "'{'")
        self._skip_newlines()
        self._expect(TokenKind.LPAREN, "closure parameter clause '('")
        # Re-enter the shared param-clause parser from after '('.
        self.pos -= 1
        params = self._parse_param_clause()
        ret_type: Type = VOID
        if self._match(TokenKind.ARROW):
            ret_type = self._parse_type()
        self._expect(TokenKind.KW_IN, "'in'")
        body = ast.Block(line=tok.line, column=tok.column)
        self._skip_newlines()
        while not self._check(TokenKind.RBRACE):
            body.stmts.append(self._parse_stmt())
            self._skip_newlines()
        self._expect(TokenKind.RBRACE, "'}'")
        return ast.ClosureExpr(line=tok.line, column=tok.column, params=params,
                               ret_type=ret_type, body=body)


def parse_module(source: str, module_name: str, filename: str = "") -> ast.Module:
    """Parse *source* into an AST module named *module_name*."""
    filename = filename or f"{module_name}.sw"
    tokens = tokenize(source, filename)
    return Parser(tokens, module_name, filename).parse_module()
