"""Semantic analysis for Swiftlet.

``analyze_program`` resolves names across modules, type-checks every body,
annotates the AST in place (``Expr.ty``, ``Ident.binding``, call resolution,
closure capture lists), and returns a :class:`ProgramInfo` that SILGen
consumes.

Key jobs beyond ordinary checking:

* **Closure captures** — any binding referenced from a closure that was
  declared in an enclosing function is recorded in ``ClosureExpr.captures``
  and flagged ``boxed`` so SILGen promotes it to a heap box (Swift's
  capture-by-reference semantics).
* **Throws discipline** — calls to ``throws`` functions must appear under
  ``try``, and ``try`` is only legal where the error can go somewhere (a
  throwing function or a ``do``/``catch``).
* **Constant globals** — module-level ``let``/``var`` initializers must be
  compile-time constants; their values are folded here and later placed in
  the binary's data section (this is what the data-layout experiment of
  Section VI-3 reorders).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import SemaError
from repro.frontend import ast
from repro.frontend.types import (
    BOOL,
    DOUBLE,
    INT,
    NIL,
    STRING,
    VOID,
    ArrayType,
    ClassType,
    FuncType,
    NilType,
    Type,
    assignable,
)

# Reserved runtime type ids; user classes start at FIRST_CLASS_TYPE_ID.
TYPE_ID_ARRAY = 1
TYPE_ID_STRING = 2
TYPE_ID_CLOSURE = 3
TYPE_ID_BOX = 4
FIRST_CLASS_TYPE_ID = 16

#: Builtin free functions: name -> (param types, return type).
BUILTIN_SIGNATURES: Dict[str, Tuple[Tuple[Type, ...], Type]] = {
    "sqrt": ((DOUBLE,), DOUBLE),
    "exp": ((DOUBLE,), DOUBLE),
    "log": ((DOUBLE,), DOUBLE),
    "pow": ((DOUBLE, DOUBLE), DOUBLE),
    "sin": ((DOUBLE,), DOUBLE),
    "cos": ((DOUBLE,), DOUBLE),
    "floor": ((DOUBLE,), DOUBLE),
    "abs": ((INT,), INT),
    "random": ((), INT),
    "seedRandom": ((INT,), VOID),
    "assert": ((BOOL,), VOID),
}

_PRINTABLE = (INT, DOUBLE, BOOL, STRING)


@dataclass
class ClassInfo:
    """Resolved class layout: field order fixes the object layout."""

    decl: ast.ClassDecl
    module: str
    type: ClassType = None  # type: ignore[assignment]
    fields_by_name: Dict[str, ast.FieldDecl] = field(default_factory=dict)
    methods_by_name: Dict[str, ast.FuncDecl] = field(default_factory=dict)


@dataclass
class ModuleEnv:
    """Name tables for one module's top-level declarations."""

    name: str
    functions: Dict[str, ast.FuncDecl] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    globals: Dict[str, ast.GlobalDecl] = field(default_factory=dict)
    imports: List[str] = field(default_factory=list)


@dataclass
class ProgramInfo:
    """Result of sema over a whole program (a set of modules)."""

    modules: List[ast.Module]
    envs: Dict[str, ModuleEnv]
    classes_by_qualified_name: Dict[str, ClassInfo]
    #: All closures discovered, in SILGen emission order.
    closures: List[ast.ClosureExpr]

    def class_info(self, ty: ClassType) -> ClassInfo:
        return self.classes_by_qualified_name[ty.qualified_name]


class _FuncContext:
    """Tracks the function (or closure) whose body is being checked."""

    def __init__(self, kind: str, ret_type: Type, throws: bool,
                 closure: Optional[ast.ClosureExpr] = None):
        self.kind = kind  # "func" | "method" | "init" | "closure"
        self.ret_type = ret_type
        self.throws = throws
        self.closure = closure


class Sema:
    """Checks one program; see :func:`analyze_program`."""

    def __init__(self, modules: List[ast.Module]):
        self.modules = modules
        self.envs: Dict[str, ModuleEnv] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.closures: List[ast.ClosureExpr] = []
        self._uid = 0
        self._next_type_id = FIRST_CLASS_TYPE_ID
        self._scopes: List[Dict[str, ast.VarBinding]] = []
        #: Parallel to _scopes: index into _contexts that owns each scope.
        self._scope_ctx: List[int] = []
        self._contexts: List[_FuncContext] = []
        self._current_module: Optional[ModuleEnv] = None
        self._current_class: Optional[ClassInfo] = None
        self._loop_depth = 0
        self._try_depth = 0
        self._catch_depth = 0
        self._closure_counter = 0

    # -- public API ---------------------------------------------------------

    def run(self) -> ProgramInfo:
        for module in self.modules:
            if module.name in self.envs:
                raise SemaError(f"duplicate module name {module.name!r}")
            self._collect_headers(module)
        for module in self.modules:
            for imp in module.imports:
                if imp not in self.envs:
                    raise SemaError(
                        f"module {module.name!r} imports unknown module "
                        f"{imp!r}", module.line, module.column)
        for module in self.modules:
            self._resolve_signatures(module)
        for module in self.modules:
            self._check_module(module)
        return ProgramInfo(
            modules=self.modules,
            envs=self.envs,
            classes_by_qualified_name=self.classes,
            closures=self.closures,
        )

    # -- header collection -----------------------------------------------------

    def _collect_headers(self, module: ast.Module) -> None:
        env = ModuleEnv(name=module.name, imports=list(module.imports))
        self.envs[module.name] = env
        for cls in module.classes:
            if cls.name in env.classes:
                raise SemaError(f"duplicate class {cls.name!r} in {module.name}",
                                cls.line, cls.column)
            qual = f"{module.name}::{cls.name}"
            cls.qualified_name = qual
            cls.type_id = self._next_type_id
            self._next_type_id += 1
            info = ClassInfo(decl=cls, module=module.name, type=ClassType(qual))
            for idx, fld in enumerate(cls.fields):
                if fld.name in info.fields_by_name:
                    raise SemaError(f"duplicate field {fld.name!r} in {cls.name}",
                                    fld.line, fld.column)
                fld.index = idx
                info.fields_by_name[fld.name] = fld
            for method in cls.methods:
                if method.name in info.methods_by_name:
                    raise SemaError(
                        f"duplicate method {method.name!r} in {cls.name}",
                        method.line, method.column)
                method.owner_class = cls
                method.symbol = f"{module.name}::{cls.name}.{method.name}"
                info.methods_by_name[method.name] = method
            seen_arity = set()
            for i, ini in enumerate(cls.inits):
                arity = len(ini.params)
                if arity in seen_arity:
                    raise SemaError(
                        f"duplicate init with {arity} parameters in {cls.name}",
                        ini.line, ini.column)
                seen_arity.add(arity)
                ini.owner_class = cls
                ini.symbol = f"{module.name}::{cls.name}.init#{arity}"
            env.classes[cls.name] = info
            self.classes[qual] = info
        for fn in module.functions:
            if fn.name in env.functions or fn.name in env.classes:
                raise SemaError(f"duplicate declaration {fn.name!r} in {module.name}",
                                fn.line, fn.column)
            fn.symbol = f"{module.name}::{fn.name}"
            env.functions[fn.name] = fn
        for gbl in module.globals:
            if gbl.name in env.globals or gbl.name in env.functions:
                raise SemaError(f"duplicate global {gbl.name!r} in {module.name}",
                                gbl.line, gbl.column)
            gbl.symbol = f"{module.name}::{gbl.name}"
            env.globals[gbl.name] = gbl

    def _resolve_signatures(self, module: ast.Module) -> None:
        """Eagerly resolve all declared types in the defining module's scope.

        Name resolution for a signature must happen in the *defining*
        module's import context (two modules may each declare a class with
        the same short name), so this runs before any body is checked.
        """
        self._current_module = self.envs[module.name]
        for fn in module.functions:
            for param in fn.params:
                param.ty = self._resolve_type(param.ty, param)
            fn.ret_type = self._resolve_type(fn.ret_type, fn)
        for cls in module.classes:
            for fld in cls.fields:
                fld.ty = self._resolve_type(fld.ty, fld)
            for method in cls.methods:
                for param in method.params:
                    param.ty = self._resolve_type(param.ty, param)
                method.ret_type = self._resolve_type(method.ret_type, method)
            for ini in cls.inits:
                for param in ini.params:
                    param.ty = self._resolve_type(param.ty, param)
        self._current_module = None

    # -- type resolution ----------------------------------------------------------

    def _resolve_type(self, ty: Type, node: ast.Node) -> Type:
        """Qualify nominal class references against the current module."""
        if isinstance(ty, ClassType) and "::" not in ty.qualified_name:
            info = self._lookup_class(ty.qualified_name)
            if info is None:
                raise SemaError(f"unknown type {ty.qualified_name!r}",
                                node.line, node.column)
            return info.type
        if isinstance(ty, ArrayType):
            return ArrayType(self._resolve_type(ty.elem, node))
        if isinstance(ty, FuncType):
            params = tuple(self._resolve_type(p, node) for p in ty.params)
            return FuncType(params, self._resolve_type(ty.ret, node), ty.throws)
        return ty

    def _visible_envs(self) -> List[ModuleEnv]:
        assert self._current_module is not None
        envs = [self._current_module]
        for imp in self._current_module.imports:
            if imp not in self.envs:
                raise SemaError(
                    f"module {self._current_module.name!r} imports unknown "
                    f"module {imp!r}"
                )
            envs.append(self.envs[imp])
        return envs

    def _lookup_class(self, name: str) -> Optional[ClassInfo]:
        for env in self._visible_envs():
            if name in env.classes:
                return env.classes[name]
        return None

    def _lookup_function(self, name: str) -> Optional[ast.FuncDecl]:
        for env in self._visible_envs():
            if name in env.functions:
                return env.functions[name]
        return None

    def _lookup_global(self, name: str) -> Optional[ast.GlobalDecl]:
        for env in self._visible_envs():
            if name in env.globals:
                return env.globals[name]
        return None

    # -- scopes / bindings --------------------------------------------------------

    def _push_scope(self) -> None:
        self._scopes.append({})
        self._scope_ctx.append(len(self._contexts) - 1)

    def _pop_scope(self) -> None:
        self._scopes.pop()
        self._scope_ctx.pop()

    def _declare(self, name: str, ty: Type, is_let: bool, kind: str,
                 node: ast.Node) -> ast.VarBinding:
        self._uid += 1
        binding = ast.VarBinding(name=name, ty=ty, is_let=is_let, kind=kind,
                                 uid=self._uid)
        if name == "_":
            # Discard binding: never enters the scope, can repeat freely.
            return binding
        if name in self._scopes[-1]:
            raise SemaError(f"redeclaration of {name!r}", node.line, node.column)
        self._scopes[-1][name] = binding
        return binding

    def _lookup_var(self, name: str) -> Optional[Tuple[ast.VarBinding, int]]:
        """Find a binding; returns (binding, owning-context index)."""
        for i in range(len(self._scopes) - 1, -1, -1):
            if name in self._scopes[i]:
                return self._scopes[i][name], self._scope_ctx[i]
        return None

    def _resolve_var(self, name: str, node: ast.Node) -> Optional[ast.VarBinding]:
        found = self._lookup_var(name)
        if found is None:
            return None
        binding, owner_ctx = found
        current_ctx = len(self._contexts) - 1
        if owner_ctx != current_ctx:
            # Captured across one or more closure boundaries: record the
            # capture in every intervening closure and box the binding.
            binding.boxed = True
            for ctx_idx in range(owner_ctx + 1, current_ctx + 1):
                ctx = self._contexts[ctx_idx]
                if ctx.closure is not None and binding not in ctx.closure.captures:
                    ctx.closure.captures.append(binding)
        return binding

    # -- module / declaration checking --------------------------------------------

    def _check_module(self, module: ast.Module) -> None:
        self._current_module = self.envs[module.name]
        for gbl in module.globals:
            self._check_global(gbl)
        for fn in module.functions:
            self._check_function(fn, kind="func")
        for cls in module.classes:
            info = self.envs[module.name].classes[cls.name]
            for fld in cls.fields:
                fld.ty = self._resolve_type(fld.ty, fld)
            self._current_class = info
            for ini in cls.inits:
                self._check_init(ini, info)
            for method in cls.methods:
                self._check_function(method, kind="method", owner=info)
            self._current_class = None
        self._current_module = None

    def _check_global(self, gbl: ast.GlobalDecl) -> None:
        value, ty = self._fold_constant(gbl.init)
        if gbl.declared_type is not None:
            declared = self._resolve_type(gbl.declared_type, gbl)
            if not assignable(declared, ty):
                raise SemaError(
                    f"global {gbl.name!r}: cannot assign {ty} to {declared}",
                    gbl.line, gbl.column)
            ty = declared
        if ty.is_ref() and not gbl.is_let:
            raise SemaError(
                f"global {gbl.name!r}: reference-typed globals must be 'let' "
                "(they are statically allocated objects)", gbl.line, gbl.column)
        gbl.declared_type = ty
        gbl.init.ty = ty
        gbl.const_value = value  # type: ignore[attr-defined]
        self._uid += 1
        gbl.binding = ast.VarBinding(name=gbl.name, ty=ty, is_let=gbl.is_let,
                                     kind="global", uid=self._uid,
                                     symbol=gbl.symbol)

    def _fold_constant(self, expr: Optional[ast.Expr]):
        """Fold a global initializer to a Python constant; raise if dynamic."""
        if isinstance(expr, ast.IntLit):
            return expr.value, INT
        if isinstance(expr, ast.FloatLit):
            return expr.value, DOUBLE
        if isinstance(expr, ast.BoolLit):
            return (1 if expr.value else 0), BOOL
        if isinstance(expr, ast.StringLit):
            return expr.value, STRING
        if isinstance(expr, ast.UnaryExpr) and expr.op == "-":
            value, ty = self._fold_constant(expr.operand)
            if ty not in (INT, DOUBLE):
                raise SemaError("global initializer must be numeric to negate",
                                expr.line, expr.column)
            return -value, ty
        if isinstance(expr, ast.ArrayLit):
            if not expr.elements:
                raise SemaError("global array initializer must not be empty",
                                expr.line, expr.column)
            values = []
            elem_ty: Optional[Type] = None
            for elem in expr.elements:
                value, ty = self._fold_constant(elem)
                if elem_ty is None:
                    elem_ty = ty
                elif ty != elem_ty:
                    raise SemaError("mixed element types in global array",
                                    expr.line, expr.column)
                values.append(value)
            return values, ArrayType(elem_ty)
        if isinstance(expr, ast.ArrayRepeating):
            value, ty = self._fold_constant(expr.repeating)
            count, county = self._fold_constant(expr.count)
            if county != INT:
                raise SemaError("repeat count must be a constant Int",
                                expr.line, expr.column)
            return [value] * count, ArrayType(ty)
        if isinstance(expr, ast.BinaryExpr):
            lv, lt = self._fold_constant(expr.left)
            rv, rt = self._fold_constant(expr.right)
            if lt != rt or lt not in (INT, DOUBLE):
                raise SemaError("global initializer arithmetic must be numeric",
                                expr.line, expr.column)
            try:
                folded = {
                    "+": lambda: lv + rv,
                    "-": lambda: lv - rv,
                    "*": lambda: lv * rv,
                    "/": lambda: lv // rv if lt == INT else lv / rv,
                    "%": lambda: lv % rv,
                }[expr.op]()
            except KeyError:
                raise SemaError(
                    f"operator {expr.op!r} not allowed in global initializer",
                    expr.line, expr.column) from None
            except ZeroDivisionError:
                raise SemaError("division by zero in global initializer",
                                expr.line, expr.column) from None
            return folded, lt
        node = expr if expr is not None else ast.Expr()
        raise SemaError("global initializer must be a compile-time constant",
                        node.line, node.column)

    def _check_function(self, fn: ast.FuncDecl, kind: str,
                        owner: Optional[ClassInfo] = None) -> None:
        fn.ret_type = self._resolve_type(fn.ret_type, fn)
        ctx = _FuncContext(kind, fn.ret_type, fn.throws)
        self._contexts.append(ctx)
        self._push_scope()
        if owner is not None:
            self._declare("self", owner.type, True, "self", fn)
        for param in fn.params:
            param.ty = self._resolve_type(param.ty, param)
            param.binding = self._declare(param.name, param.ty, True, "param", param)
        self._check_block(fn.body)
        if fn.ret_type != VOID and not self._block_exits(fn.body):
            raise SemaError(
                f"function {fn.name!r}: missing return on some paths",
                fn.line, fn.column)
        self._pop_scope()
        self._contexts.pop()

    def _check_init(self, ini: ast.InitDecl, owner: ClassInfo) -> None:
        ctx = _FuncContext("init", VOID, ini.throws)
        self._contexts.append(ctx)
        self._push_scope()
        self._declare("self", owner.type, True, "self", ini)
        for param in ini.params:
            param.ty = self._resolve_type(param.ty, param)
            param.binding = self._declare(param.name, param.ty, True, "param", param)
        self._check_block(ini.body)
        self._pop_scope()
        self._contexts.pop()

    # -- statements --------------------------------------------------------------

    def _check_block(self, block: ast.Block) -> None:
        self._push_scope()
        for stmt in block.stmts:
            self._check_stmt(stmt)
        self._pop_scope()

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDeclStmt):
            self._check_var_decl(stmt)
        elif isinstance(stmt, ast.AssignStmt):
            self._check_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self._check_expr(stmt.cond, expected=BOOL)
            self._require(stmt.cond, BOOL, "if condition")
            self._check_block(stmt.then_block)
            if stmt.else_block is not None:
                self._check_block(stmt.else_block)
        elif isinstance(stmt, ast.WhileStmt):
            self._check_expr(stmt.cond, expected=BOOL)
            self._require(stmt.cond, BOOL, "while condition")
            self._loop_depth += 1
            self._check_block(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.ForRangeStmt):
            self._check_expr(stmt.start, expected=INT)
            self._check_expr(stmt.end, expected=INT)
            self._require(stmt.start, INT, "range start")
            self._require(stmt.end, INT, "range end")
            self._push_scope()
            stmt.binding = self._declare(stmt.var_name, INT, True, "local", stmt)
            self._loop_depth += 1
            self._check_block(stmt.body)
            self._loop_depth -= 1
            self._pop_scope()
        elif isinstance(stmt, ast.ForEachStmt):
            self._check_expr(stmt.iterable)
            ity = stmt.iterable.ty
            if not isinstance(ity, ArrayType):
                raise SemaError(f"for-in requires an array, found {ity}",
                                stmt.line, stmt.column)
            self._push_scope()
            stmt.binding = self._declare(stmt.var_name, ity.elem, True, "local", stmt)
            self._loop_depth += 1
            self._check_block(stmt.body)
            self._loop_depth -= 1
            self._pop_scope()
        elif isinstance(stmt, ast.ReturnStmt):
            ctx = self._contexts[-1]
            if ctx.kind == "init":
                if stmt.value is not None:
                    raise SemaError("'init' cannot return a value",
                                    stmt.line, stmt.column)
                return
            if stmt.value is None:
                if ctx.ret_type != VOID:
                    raise SemaError(
                        f"non-void function must return {ctx.ret_type}",
                        stmt.line, stmt.column)
                return
            if ctx.ret_type == VOID:
                raise SemaError("void function cannot return a value",
                                stmt.line, stmt.column)
            self._check_expr(stmt.value, expected=ctx.ret_type)
            if not assignable(ctx.ret_type, stmt.value.ty):
                raise SemaError(
                    f"cannot return {stmt.value.ty} from function returning "
                    f"{ctx.ret_type}", stmt.line, stmt.column)
        elif isinstance(stmt, ast.ThrowStmt):
            if not self._can_throw_here():
                raise SemaError("'throw' requires a throwing function or do/catch",
                                stmt.line, stmt.column)
            self._check_expr(stmt.code, expected=INT)
            self._require(stmt.code, INT, "thrown error code")
        elif isinstance(stmt, ast.DoCatchStmt):
            self._catch_depth += 1
            self._check_block(stmt.body)
            self._catch_depth -= 1
            self._push_scope()
            stmt.error_binding = self._declare(stmt.error_name, INT, True,
                                               "catch", stmt)
            self._check_block(stmt.catch_body)
            self._pop_scope()
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            if self._loop_depth == 0:
                raise SemaError("'break'/'continue' outside a loop",
                                stmt.line, stmt.column)
        else:  # pragma: no cover - parser produces no other nodes
            raise SemaError(f"unknown statement {type(stmt).__name__}")

    def _check_var_decl(self, stmt: ast.VarDeclStmt) -> None:
        declared: Optional[Type] = None
        if stmt.declared_type is not None:
            declared = self._resolve_type(stmt.declared_type, stmt)
        if stmt.init is None:
            if declared is None:
                raise SemaError(
                    f"variable {stmt.name!r} needs a type or an initializer",
                    stmt.line, stmt.column)
            if stmt.is_let:
                raise SemaError(f"'let {stmt.name}' must be initialized",
                                stmt.line, stmt.column)
            ty = declared
        else:
            self._check_expr(stmt.init, expected=declared)
            ty = stmt.init.ty
            if isinstance(ty, NilType):
                if declared is None:
                    raise SemaError("cannot infer type from 'nil'",
                                    stmt.line, stmt.column)
                ty = declared
            if declared is not None:
                if not assignable(declared, stmt.init.ty):
                    raise SemaError(
                        f"cannot initialize {declared} with {stmt.init.ty}",
                        stmt.line, stmt.column)
                ty = declared
        stmt.declared_type = ty
        stmt.binding = self._declare(stmt.name, ty, stmt.is_let, "local", stmt)

    def _check_assign(self, stmt: ast.AssignStmt) -> None:
        target = stmt.target
        self._check_expr(target)
        self._check_lvalue(target)
        expected = target.ty
        self._check_expr(stmt.value, expected=expected)
        if stmt.op is not None:
            # Compound assignment requires matching numeric (or string +) types.
            ok = (
                target.ty == stmt.value.ty
                and (target.ty in (INT, DOUBLE)
                     or (target.ty == STRING and stmt.op == "+"))
            )
            if not ok:
                raise SemaError(
                    f"invalid compound assignment {target.ty} {stmt.op}= "
                    f"{stmt.value.ty}", stmt.line, stmt.column)
        elif not assignable(target.ty, stmt.value.ty):
            raise SemaError(f"cannot assign {stmt.value.ty} to {target.ty}",
                            stmt.line, stmt.column)

    def _check_lvalue(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Ident):
            binding = expr.binding
            if not isinstance(binding, ast.VarBinding):
                raise SemaError(f"{expr.name!r} is not assignable",
                                expr.line, expr.column)
            if binding.is_let and binding.kind != "global":
                raise SemaError(f"cannot assign to 'let' constant {expr.name!r}",
                                expr.line, expr.column)
            if binding.kind == "global" and binding.is_let:
                raise SemaError(f"cannot assign to 'let' global {expr.name!r}",
                                expr.line, expr.column)
            return
        if isinstance(expr, ast.MemberExpr):
            kind = expr.member_kind
            if not (isinstance(kind, tuple) and kind[0] == "field"):
                raise SemaError(f"member {expr.name!r} is not assignable",
                                expr.line, expr.column)
            fld: ast.FieldDecl = kind[1]
            if fld.is_let and self._contexts[-1].kind != "init":
                raise SemaError(
                    f"cannot assign to 'let' field {expr.name!r} outside init",
                    expr.line, expr.column)
            return
        if isinstance(expr, ast.IndexExpr):
            if not isinstance(expr.base.ty, ArrayType):
                raise SemaError("only array elements are assignable",
                                expr.line, expr.column)
            return
        raise SemaError("expression is not assignable", expr.line, expr.column)

    def _block_exits(self, block: ast.Block) -> bool:
        """Conservatively: does every path through *block* return or throw?"""
        for stmt in block.stmts:
            if isinstance(stmt, (ast.ReturnStmt, ast.ThrowStmt)):
                return True
            if isinstance(stmt, ast.IfStmt) and stmt.else_block is not None:
                if self._block_exits(stmt.then_block) and self._block_exits(stmt.else_block):
                    return True
            if isinstance(stmt, ast.DoCatchStmt):
                if self._block_exits(stmt.body) and self._block_exits(stmt.catch_body):
                    return True
        return False

    # -- expressions ---------------------------------------------------------------

    def _require(self, expr: ast.Expr, ty: Type, what: str) -> None:
        if expr.ty != ty:
            raise SemaError(f"{what} must be {ty}, found {expr.ty}",
                            expr.line, expr.column)

    def _can_throw_here(self) -> bool:
        return self._contexts[-1].throws or self._catch_depth > 0

    def _check_expr(self, expr: ast.Expr, expected: Optional[Type] = None) -> None:
        if isinstance(expr, ast.IntLit):
            expr.ty = INT
        elif isinstance(expr, ast.FloatLit):
            expr.ty = DOUBLE
        elif isinstance(expr, ast.BoolLit):
            expr.ty = BOOL
        elif isinstance(expr, ast.StringLit):
            expr.ty = STRING
        elif isinstance(expr, ast.NilLit):
            expr.ty = NIL
        elif isinstance(expr, ast.SelfExpr):
            found = self._resolve_var("self", expr)
            if found is None:
                raise SemaError("'self' outside a class", expr.line, expr.column)
            expr.binding = found
            expr.ty = found.ty
        elif isinstance(expr, ast.Ident):
            self._check_ident(expr)
        elif isinstance(expr, ast.BinaryExpr):
            self._check_binary(expr)
        elif isinstance(expr, ast.UnaryExpr):
            self._check_unary(expr)
        elif isinstance(expr, ast.CallExpr):
            self._check_call(expr)
        elif isinstance(expr, ast.MemberExpr):
            self._check_member(expr)
        elif isinstance(expr, ast.IndexExpr):
            self._check_index(expr)
        elif isinstance(expr, ast.ArrayLit):
            self._check_array_lit(expr, expected)
        elif isinstance(expr, ast.ArrayRepeating):
            expr.elem_type = self._resolve_type(expr.elem_type, expr)
            self._check_expr(expr.repeating, expected=expr.elem_type)
            if not assignable(expr.elem_type, expr.repeating.ty):
                raise SemaError(
                    f"repeating value {expr.repeating.ty} does not match "
                    f"element type {expr.elem_type}", expr.line, expr.column)
            self._check_expr(expr.count, expected=INT)
            self._require(expr.count, INT, "array count")
            expr.ty = ArrayType(expr.elem_type)
        elif isinstance(expr, ast.ClosureExpr):
            self._check_closure(expr)
        elif isinstance(expr, ast.TryExpr):
            if not self._can_throw_here():
                raise SemaError(
                    "'try' requires a throwing function or do/catch",
                    expr.line, expr.column)
            self._try_depth += 1
            self._check_expr(expr.inner, expected=expected)
            self._try_depth -= 1
            expr.ty = expr.inner.ty
        else:  # pragma: no cover
            raise SemaError(f"unknown expression {type(expr).__name__}")

    def _check_ident(self, expr: ast.Ident) -> None:
        binding = self._resolve_var(expr.name, expr)
        if binding is not None:
            expr.binding = binding
            expr.ty = binding.ty
            return
        gbl = self._lookup_global(expr.name)
        if gbl is not None:
            expr.binding = gbl.binding
            expr.ty = gbl.declared_type
            return
        fn = self._lookup_function(expr.name)
        if fn is not None:
            # Function referenced as a value: SILGen wraps it in a
            # capture-free closure object.
            expr.binding = fn
            expr.ty = FuncType(tuple(self._resolve_type(p.ty, p) for p in fn.params),
                               self._resolve_type(fn.ret_type, fn), fn.throws)
            return
        cls = self._lookup_class(expr.name)
        if cls is not None:
            expr.binding = cls.decl
            expr.ty = cls.type  # type reference; only legal as a call callee
            return
        raise SemaError(f"unresolved identifier {expr.name!r}",
                        expr.line, expr.column)

    def _check_binary(self, expr: ast.BinaryExpr) -> None:
        op = expr.op
        self._check_expr(expr.left)
        self._check_expr(expr.right)
        lt, rt = expr.left.ty, expr.right.ty
        if op in ("&&", "||"):
            if lt != BOOL or rt != BOOL:
                raise SemaError(f"'{op}' requires Bool operands, found {lt}, {rt}",
                                expr.line, expr.column)
            expr.ty = BOOL
            return
        if op in ("==", "!="):
            if isinstance(lt, NilType) or isinstance(rt, NilType):
                other = rt if isinstance(lt, NilType) else lt
                if not other.is_ref():
                    raise SemaError(f"cannot compare {other} to nil",
                                    expr.line, expr.column)
                expr.ty = BOOL
                return
            if lt != rt:
                raise SemaError(f"cannot compare {lt} to {rt}",
                                expr.line, expr.column)
            if isinstance(lt, (ArrayType, FuncType)):
                # identity comparison for arrays/closures
                expr.ty = BOOL
                return
            expr.ty = BOOL
            return
        if op in ("<", "<=", ">", ">="):
            if lt != rt or lt not in (INT, DOUBLE):
                raise SemaError(f"cannot order {lt} and {rt}",
                                expr.line, expr.column)
            expr.ty = BOOL
            return
        if op == "+" and lt == STRING and rt == STRING:
            expr.ty = STRING
            return
        if op in ("%", "&", "|", "^", "<<", ">>"):
            if lt != INT or rt != INT:
                raise SemaError(f"'{op}' requires Int operands, found {lt}, {rt}",
                                expr.line, expr.column)
            expr.ty = INT
            return
        if op in ("+", "-", "*", "/"):
            if lt != rt or lt not in (INT, DOUBLE):
                raise SemaError(f"'{op}' requires matching numeric operands, "
                                f"found {lt}, {rt}", expr.line, expr.column)
            expr.ty = lt
            return
        raise SemaError(f"unknown operator {op!r}", expr.line, expr.column)

    def _check_unary(self, expr: ast.UnaryExpr) -> None:
        self._check_expr(expr.operand)
        if expr.op == "-":
            if expr.operand.ty not in (INT, DOUBLE):
                raise SemaError(f"cannot negate {expr.operand.ty}",
                                expr.line, expr.column)
            expr.ty = expr.operand.ty
        elif expr.op == "!":
            if expr.operand.ty != BOOL:
                raise SemaError(f"'!' requires Bool, found {expr.operand.ty}",
                                expr.line, expr.column)
            expr.ty = BOOL
        else:  # pragma: no cover
            raise SemaError(f"unknown unary operator {expr.op!r}")

    def _check_call(self, expr: ast.CallExpr) -> None:
        callee = expr.callee
        # Method call / array builtin: member callee.
        if isinstance(callee, ast.MemberExpr):
            self._check_method_call(expr, callee)
            return
        if isinstance(callee, ast.Ident):
            name = callee.name
            # Int(x) / Double(x) conversions (reserved type names).
            if name in ("Int", "Double"):
                self._check_conversion(expr, name)
                return
            # User declarations shadow builtins; locals shadow functions.
            local = self._local_or_none(name)
            if local is None:
                fn = self._lookup_function(name)
                if fn is not None:
                    self._check_direct_call(expr, fn)
                    return
                cls = self._lookup_class(name)
                if cls is not None:
                    self._check_ctor_call(expr, cls)
                    return
                if name == "print":
                    self._check_args(expr, None)
                    if len(expr.args) != 1 or expr.args[0].ty not in _PRINTABLE:
                        raise SemaError(
                            "print takes one Int/Double/Bool/String argument",
                            expr.line, expr.column)
                    expr.call_kind = "builtin"
                    expr.target = f"print_{str(expr.args[0].ty).lower()}"
                    expr.ty = VOID
                    return
                if name in BUILTIN_SIGNATURES:
                    params, ret = BUILTIN_SIGNATURES[name]
                    self._check_args(expr, list(params))
                    expr.call_kind = "builtin"
                    expr.target = name
                    expr.ty = ret
                    return
        # Otherwise: callee is a closure value.
        self._check_expr(callee)
        fty = callee.ty
        if not isinstance(fty, FuncType):
            raise SemaError(f"cannot call a value of type {fty}",
                            expr.line, expr.column)
        self._check_args(expr, list(fty.params))
        if fty.throws and self._try_depth == 0:
            raise SemaError("call to throwing function value requires 'try'",
                            expr.line, expr.column)
        expr.call_kind = "value"
        expr.ty = fty.ret

    def _local_or_none(self, name: str) -> Optional[ast.VarBinding]:
        found = self._lookup_var(name)
        return found[0] if found else None

    def _check_direct_call(self, expr: ast.CallExpr, fn: ast.FuncDecl) -> None:
        params = [self._resolve_type(p.ty, p) for p in fn.params]
        self._check_args(expr, params)
        if fn.throws and self._try_depth == 0:
            raise SemaError(f"call to throwing function {fn.name!r} requires 'try'",
                            expr.line, expr.column)
        expr.callee.binding = fn  # type: ignore[union-attr]
        expr.call_kind = "func"
        expr.target = fn
        expr.ty = self._resolve_type(fn.ret_type, fn)

    def _check_ctor_call(self, expr: ast.CallExpr, cls: ClassInfo) -> None:
        ini = None
        for candidate in cls.decl.inits:
            if len(candidate.params) == len(expr.args):
                ini = candidate
                break
        if ini is None:
            raise SemaError(
                f"class {cls.decl.name!r} has no init with {len(expr.args)} "
                f"parameters", expr.line, expr.column)
        params = [self._resolve_type(p.ty, p) for p in ini.params]
        self._check_args(expr, params)
        if ini.throws and self._try_depth == 0:
            raise SemaError(
                f"call to throwing init of {cls.decl.name!r} requires 'try'",
                expr.line, expr.column)
        expr.call_kind = "ctor"
        expr.target = ini
        expr.ty = cls.type

    def _check_method_call(self, expr: ast.CallExpr, callee: ast.MemberExpr) -> None:
        self._check_expr(callee.base)
        base_ty = callee.base.ty
        if isinstance(base_ty, ArrayType):
            if callee.name == "append":
                self._check_args(expr, [base_ty.elem])
                expr.call_kind = "builtin"
                expr.target = "array_append"
                expr.ty = VOID
                callee.member_kind = ("builtin", "array_append")
                callee.ty = VOID
                return
            if callee.name == "removeLast":
                self._check_args(expr, [])
                expr.call_kind = "builtin"
                expr.target = "array_remove_last"
                expr.ty = base_ty.elem
                callee.member_kind = ("builtin", "array_remove_last")
                callee.ty = VOID
                return
            raise SemaError(f"arrays have no method {callee.name!r}",
                            expr.line, expr.column)
        if isinstance(base_ty, ClassType):
            info = self.classes.get(base_ty.qualified_name)
            if info is None or callee.name not in info.methods_by_name:
                raise SemaError(
                    f"class {base_ty.name!r} has no method {callee.name!r}",
                    expr.line, expr.column)
            method = info.methods_by_name[callee.name]
            params = [self._resolve_type(p.ty, p) for p in method.params]
            self._check_args(expr, params)
            if method.throws and self._try_depth == 0:
                raise SemaError(
                    f"call to throwing method {callee.name!r} requires 'try'",
                    expr.line, expr.column)
            callee.member_kind = ("method", method)
            callee.ty = VOID
            expr.call_kind = "method"
            expr.target = method
            expr.ty = self._resolve_type(method.ret_type, method)
            return
        raise SemaError(f"type {base_ty} has no methods", expr.line, expr.column)

    def _check_conversion(self, expr: ast.CallExpr, name: str) -> None:
        if len(expr.args) != 1:
            raise SemaError(f"{name}() takes one argument", expr.line, expr.column)
        self._check_expr(expr.args[0])
        src = expr.args[0].ty
        if name == "Int":
            if src == DOUBLE:
                expr.target = "double_to_int"
            elif src == BOOL:
                expr.target = "bool_to_int"
            elif src == INT:
                expr.target = "int_identity"
            else:
                raise SemaError(f"cannot convert {src} to Int",
                                expr.line, expr.column)
            expr.ty = INT
        else:
            if src == INT:
                expr.target = "int_to_double"
            elif src == DOUBLE:
                expr.target = "double_identity"
            else:
                raise SemaError(f"cannot convert {src} to Double",
                                expr.line, expr.column)
            expr.ty = DOUBLE
        expr.call_kind = "builtin"

    def _check_args(self, expr: ast.CallExpr,
                    params: Optional[List[Type]]) -> None:
        if params is None:
            for arg in expr.args:
                self._check_expr(arg)
            return
        if len(expr.args) != len(params):
            raise SemaError(
                f"call expects {len(params)} arguments, found {len(expr.args)}",
                expr.line, expr.column)
        for arg, pty in zip(expr.args, params):
            self._check_expr(arg, expected=pty)
            if not assignable(pty, arg.ty):
                raise SemaError(f"argument of type {arg.ty} does not match "
                                f"parameter type {pty}", arg.line, arg.column)

    def _check_member(self, expr: ast.MemberExpr) -> None:
        self._check_expr(expr.base)
        base_ty = expr.base.ty
        if isinstance(base_ty, (ArrayType,)) and expr.name == "count":
            expr.member_kind = ("count",)
            expr.ty = INT
            return
        if base_ty == STRING and expr.name == "count":
            expr.member_kind = ("count",)
            expr.ty = INT
            return
        if isinstance(base_ty, ClassType):
            info = self.classes.get(base_ty.qualified_name)
            if info is not None and expr.name in info.fields_by_name:
                fld = info.fields_by_name[expr.name]
                expr.member_kind = ("field", fld)
                expr.ty = fld.ty
                return
            raise SemaError(f"class {base_ty.name!r} has no field {expr.name!r}",
                            expr.line, expr.column)
        raise SemaError(f"type {base_ty} has no member {expr.name!r}",
                        expr.line, expr.column)

    def _check_index(self, expr: ast.IndexExpr) -> None:
        self._check_expr(expr.base)
        self._check_expr(expr.index, expected=INT)
        self._require(expr.index, INT, "subscript index")
        base_ty = expr.base.ty
        if isinstance(base_ty, ArrayType):
            expr.ty = base_ty.elem
            return
        if base_ty == STRING:
            expr.ty = INT  # character code
            return
        raise SemaError(f"type {base_ty} is not subscriptable",
                        expr.line, expr.column)

    def _check_array_lit(self, expr: ast.ArrayLit,
                         expected: Optional[Type]) -> None:
        elem_expected: Optional[Type] = None
        if isinstance(expected, ArrayType):
            elem_expected = expected.elem
        if not expr.elements:
            if elem_expected is None:
                raise SemaError("empty array literal needs a type annotation",
                                expr.line, expr.column)
            expr.ty = ArrayType(elem_expected)
            return
        elem_ty: Optional[Type] = elem_expected
        for elem in expr.elements:
            self._check_expr(elem, expected=elem_ty)
            if elem_ty is None or isinstance(elem_ty, NilType):
                elem_ty = elem.ty
        if elem_ty is None or isinstance(elem_ty, NilType):
            raise SemaError("cannot infer array element type",
                            expr.line, expr.column)
        for elem in expr.elements:
            if not assignable(elem_ty, elem.ty):
                raise SemaError(
                    f"array element {elem.ty} does not match {elem_ty}",
                    elem.line, elem.column)
        expr.ty = ArrayType(elem_ty)

    def _check_closure(self, expr: ast.ClosureExpr) -> None:
        assert self._current_module is not None
        self._closure_counter += 1
        expr.symbol = (f"{self._current_module.name}::closure#"
                       f"{self._closure_counter}")
        expr.ret_type = self._resolve_type(expr.ret_type, expr)
        ctx = _FuncContext("closure", expr.ret_type, False, closure=expr)
        self._contexts.append(ctx)
        self._push_scope()
        for param in expr.params:
            param.ty = self._resolve_type(param.ty, param)
            param.binding = self._declare(param.name, param.ty, True, "param", param)
        saved_loop, self._loop_depth = self._loop_depth, 0
        saved_catch, self._catch_depth = self._catch_depth, 0
        saved_try, self._try_depth = self._try_depth, 0
        self._check_block(expr.body)
        self._loop_depth = saved_loop
        self._catch_depth = saved_catch
        self._try_depth = saved_try
        if expr.ret_type != VOID and not self._block_exits(expr.body):
            raise SemaError("closure is missing a return on some paths",
                            expr.line, expr.column)
        self._pop_scope()
        self._contexts.pop()
        self.closures.append(expr)
        expr.ty = FuncType(tuple(p.ty for p in expr.params), expr.ret_type, False)


def analyze_program(modules: List[ast.Module]) -> ProgramInfo:
    """Run semantic analysis over a whole program (all modules together)."""
    return Sema(modules).run()
