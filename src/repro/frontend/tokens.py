"""Token definitions for the Swiftlet language.

Swiftlet is the Swift-like source language of this reproduction: classes with
automatic reference counting, closures, ``throws``/``try`` error handling,
arrays, strings and doubles.  The token set is a pragmatic subset of Swift's.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Union


class TokenKind(Enum):
    # literals / identifiers
    INT = auto()
    FLOAT = auto()
    STRING = auto()
    IDENT = auto()

    # keywords
    KW_FUNC = auto()
    KW_CLASS = auto()
    KW_INIT = auto()
    KW_SELF = auto()
    KW_LET = auto()
    KW_VAR = auto()
    KW_IF = auto()
    KW_ELSE = auto()
    KW_WHILE = auto()
    KW_FOR = auto()
    KW_IN = auto()
    KW_RETURN = auto()
    KW_BREAK = auto()
    KW_CONTINUE = auto()
    KW_TRUE = auto()
    KW_FALSE = auto()
    KW_NIL = auto()
    KW_THROW = auto()
    KW_THROWS = auto()
    KW_TRY = auto()
    KW_IMPORT = auto()
    KW_PUBLIC = auto()
    KW_FINAL = auto()
    KW_DO = auto()
    KW_CATCH = auto()

    # punctuation / operators
    LPAREN = auto()
    RPAREN = auto()
    LBRACE = auto()
    RBRACE = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    COMMA = auto()
    COLON = auto()
    DOT = auto()
    ARROW = auto()        # ->
    RANGE_HALF = auto()   # ..<
    RANGE_FULL = auto()   # ...
    ASSIGN = auto()       # =
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    PERCENT = auto()
    PLUS_ASSIGN = auto()
    MINUS_ASSIGN = auto()
    STAR_ASSIGN = auto()
    SLASH_ASSIGN = auto()
    EQ = auto()           # ==
    NE = auto()           # !=
    LT = auto()
    LE = auto()
    GT = auto()
    GE = auto()
    AND = auto()          # &&
    OR = auto()           # ||
    NOT = auto()          # !
    AMP = auto()          # & (bitwise and)
    CARET = auto()        # ^ (bitwise xor)
    PIPE = auto()         # | (bitwise or)
    SHL = auto()          # <<
    SHR = auto()          # >>
    NEWLINE = auto()      # statement separator (significant, like Swift)
    SEMI = auto()
    EOF = auto()


KEYWORDS = {
    "func": TokenKind.KW_FUNC,
    "class": TokenKind.KW_CLASS,
    "init": TokenKind.KW_INIT,
    "self": TokenKind.KW_SELF,
    "let": TokenKind.KW_LET,
    "var": TokenKind.KW_VAR,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "for": TokenKind.KW_FOR,
    "in": TokenKind.KW_IN,
    "return": TokenKind.KW_RETURN,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
    "nil": TokenKind.KW_NIL,
    "throw": TokenKind.KW_THROW,
    "throws": TokenKind.KW_THROWS,
    "try": TokenKind.KW_TRY,
    "import": TokenKind.KW_IMPORT,
    "public": TokenKind.KW_PUBLIC,
    "final": TokenKind.KW_FINAL,
    "do": TokenKind.KW_DO,
    "catch": TokenKind.KW_CATCH,
}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    value: Union[int, float, str, None]
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"
