"""Shared exception hierarchy for the repro toolchain.

Every layer of the stack raises a subclass of :class:`ReproError` so that
callers (pipelines, tests, the interpreter) can distinguish toolchain
failures from ordinary Python bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro toolchain."""


class DiagnosticError(ReproError):
    """A source-level error (lex/parse/sema) with location information."""

    def __init__(self, message: str, line: int = 0, column: int = 0, filename: str = "<input>"):
        super().__init__(f"{filename}:{line}:{column}: {message}")
        self.message = message
        self.line = line
        self.column = column
        self.filename = filename


class LexerError(DiagnosticError):
    """Invalid token in source text."""


class ParseError(DiagnosticError):
    """Syntactically invalid source text."""


class SemaError(DiagnosticError):
    """Type or semantic error in source text."""


class SILError(ReproError):
    """Malformed SIL or an illegal SIL transformation."""


class LIRError(ReproError):
    """Malformed LIR or an illegal LIR transformation."""


class VerifierError(LIRError):
    """The LIR verifier found a structural violation."""


class LinkError(ReproError):
    """IR-level (llvm-link analog) or binary-level link failure."""


class ImageVerifierError(LinkError):
    """The post-link binary verifier found an inconsistent image.

    Raised by :func:`repro.link.verify.verify_image` instead of letting a
    structurally wrong binary (bad branch target, truncated text section,
    symbol/extent mismatch) reach the caller — whether it was just linked
    or restored from the build cache.
    """


class GCMetadataConflict(LinkError):
    """Conflicting 'Objective-C Garbage Collection' module flags (Section VI-2).

    Raised when two modules carry *monolithic* GC metadata words produced by
    different compilers.  The attribute-based metadata mode avoids this.
    """


class BackendError(ReproError):
    """Instruction selection / register allocation / frame lowering failure."""


class RegAllocError(BackendError):
    """The register allocator could not produce a valid assignment."""


class OutlinerError(ReproError):
    """Illegal outlining transformation (legality or bookkeeping violation)."""


class SimulationError(ReproError):
    """The machine-code interpreter hit an illegal state."""


class TrapError(SimulationError):
    """The simulated program executed a trap (BRK) instruction."""

    def __init__(self, message: str, code: int = 0):
        super().__init__(message)
        self.code = code


class RuntimeTrap(SimulationError):
    """A simulated runtime function detected a fatal error (e.g. bad refcount)."""


class ProfileError(ReproError):
    """A layout profile could not be read, parsed, or validated.

    Raised by :mod:`repro.sim.profile` for missing files, malformed JSON,
    version mismatches, and structurally invalid profile payloads — a bad
    profile must become a typed error before it can silently steer the
    layout pass (or poison a cache key)."""


class BuildError(ReproError):
    """The build orchestrator could not produce a binary.

    By default transient worker failures never surface as exceptions —
    they become :class:`~repro.pipeline.report.DegradationEvent` records
    and the degradation ladder (retry -> serial re-run) absorbs them.
    With ``BuildConfig(fail_fast=True)`` the ladder is disabled and the
    first chunk failure raises (:class:`WorkerCrashError` for dead or
    hung workers, plain :class:`BuildError` otherwise).
    """


class WorkerCrashError(BuildError):
    """A compilation worker process died (or was killed) mid-chunk."""

    def __init__(self, message: str, chunk: int = -1, attempt: int = 0):
        super().__init__(message)
        self.chunk = chunk
        self.attempt = attempt


class CacheCorruptionError(BuildError):
    """A cache entry was unreadable and could not be recovered in place."""


class JobCancelledError(BuildError):
    """A build was cooperatively cancelled (drain, client abort, breaker)."""


class DeadlineExpiredError(JobCancelledError):
    """A job missed its deadline and was cancelled at a checkpoint.

    Subclass of :class:`JobCancelledError`: an expired deadline *is* a
    cancellation, just one the scheduler (not the client) requested.
    """


class ServiceError(ReproError):
    """Base class for build-service (daemon/client/wire) failures."""


class QueueFullError(ServiceError):
    """The daemon's bounded job queue rejected an admission.

    This is backpressure, not a crash: the client is told immediately
    (typed, on the wire) instead of being left to hang, and may retry.
    """

    def __init__(self, message: str, depth: int = -1, limit: int = -1):
        super().__init__(message)
        self.depth = depth
        self.limit = limit


class DaemonUnavailableError(ServiceError):
    """No daemon is reachable at the requested address/state dir."""


class ProtocolError(ServiceError):
    """A malformed or truncated wire frame (e.g. peer disconnected
    mid-stream); the connection is unusable but the daemon keeps running
    and any already-admitted job continues to completion."""
