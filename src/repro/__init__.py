"""repro — whole-program repeated machine-code outlining, reproduced.

A self-contained Python implementation of the system described in
"An Experience with Code-Size Optimization for Production iOS Mobile
Applications" (Chabbi, Lin, Barik — CGO 2021): a Swift-like compiler
stack, the whole-program build pipeline, the suffix-tree MachineOutliner
with repeated outlining, and the simulation substrate used to reproduce
every table and figure of the paper's evaluation.

Start with the stable facade — :func:`repro.api.build`,
:func:`repro.api.run`, :func:`repro.api.connect`, re-exported here — and
``BuildConfig.preset("min-size" | "fast-build" | "balanced")`` for named
configurations; see README.md for a tour.
"""

__version__ = "1.1.0"

from repro.api import build, connect, run
from repro.pipeline import BuildConfig, BuildResult, build_program, run_build

__all__ = ["BuildConfig", "BuildResult", "build", "build_program",
           "connect", "run", "run_build", "__version__"]
